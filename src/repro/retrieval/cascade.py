"""The two-stage retrieval cascade: ANN item index → prefilter → full ranker.

Production rankers of this paper's class are the *last* stage of a cascade
(JD's AMoE serves behind a product-search retrieval stage; Yandex's
personalized ranker is explicitly the final stage of a candidate-generation
→ ranking cascade).  Scoring every catalog item with the full model is
linear in catalog size; the cascade makes the pipeline sublinear:

1. **ANN retrieval** — the :class:`~repro.retrieval.index.ItemIndex` probes
   ``nprobe`` IVF cells of the query category and returns the best
   ``retrieve_n`` ids by the cascade score below;
2. **prefilter** — the :class:`~repro.retrieval.prefilter.Prefilter`
   re-scores those N (adding the user x item cross-feature boost the index
   cannot express as a dot product) and keeps the top ``prune`` survivors;
3. **full ranking** — the compiled AW-MoE scores only the survivors.

The cheap score both stages share is one inner product per item,

    score(u, i) = <session_vec(u, query), x_i>  ( + cross boost in stage 2 )

over an **item vector space built from the model snapshot**:

* **per-expert probe scores** ``s̃_{a,k}(i)``: every expert's score for
  item ``i`` under a fixed reference session (an empty-history user),
  evaluated once per build **per age group** ``a`` (the age one-hot is a
  model input, and a trained ranker reorders the catalog tail noticeably
  across ages — for an empty-history user the age-matched probe reproduces
  their ranking *exactly*).  The session vector activates only its own age
  block and weights it both statically and **through the user's own
  session gate** ``g(u)`` (candidate-independent in search mode, §III-F1 —
  the same vector the serving cache stores), so the retrieval score
  inherits the model's personalization backbone ``Σ_k g_k·s_k`` at
  dot-product cost;
* the item-id **embedding** row of the model's table (bias-corrected: its
  contribution is weighted against the session's mean embedding, not the
  raw norm, so hot high-norm embeddings cannot dominate every query);
* the **popularity prior** (the per-category sampling probability the
  non-cascade retriever uses) and the item's **sales** signal;
* the item's dense profile ``d_i`` and its square ``d_i²`` — with the
  session vector carrying ``(2·p_u, -1)`` weights this scores the quadratic
  profile match ``-(d_i - p_u)²`` around the user's historical preference
  point ``p_u`` (a price-sensitive user peaks at low price, a
  trend-follower at high popularity).

The weights combining these terms are **calibrated at build time**: a ridge
regression fits them to the full model's logits on sampled (user, item)
probe pairs — a few exhaustive queries' worth of compute, amortized over
the build — with the top scorers of every probe query up-weighted
(retrieval cares about the head of the ranking, not mean error) and
separate weights for three behaviour regimes: brand-new users (no history —
their scores are a pure function of item/age/query, which the age-matched
gate x probe term reproduces almost exactly) and the paper's Fig. 2
category-new vs category-old split.  The regime is constant within a query
and selects the weight vector at retrieval time.

``nprobe="all"`` + ``prune=None`` is **exhaustive-parity mode**: stage 1
returns the whole category, stage 2 passes everything through, and the full
model scores exactly what the pre-cascade pipeline scored — bitwise, since
both produce candidates in ascending id order (tests and canaries rely on
this oracle).

A cascade is a snapshot of one model version.  It is built (and rebuilt on
every hot swap) by :meth:`repro.serving.engine.SearchEngine.set_model`,
which assigns model, plan, and cascade together — retrieval can never serve
embeddings of a model that is no longer scoring.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.features import assemble_candidate_batch, item_dense
from repro.data.synthetic import AGE_GROUPS
from repro.obs.trace import NULL_TRACE
from repro.retrieval.index import ItemIndex
from repro.retrieval.prefilter import Prefilter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.synthetic import World

__all__ = ["CascadeConfig", "RetrievalCascade", "RetrievalProbe", "category_popularity_probs"]

#: Caps applied to the cross-feature counters, matching the clipping of the
#: corresponding ``FEATURE_NAMES`` entries the full model consumes
#: (``impression_features``: item at 3, brand at 5, shop at 5) so the
#: prefilter boost saturates exactly where the model's feature does.
_BRAND_CAP, _SHOP_CAP, _ITEM_CAP = 5.0, 5.0, 3.0
#: Calibration rows whose target logit falls in the top tail of their probe
#: query get up-weighted by ``CascadeConfig.calibration_top_weight``.
_TOP_QUANTILE = 0.95


@dataclass(frozen=True)
class CascadeConfig:
    """Knobs of the two-stage cascade (recall on the left, speed on the right).

    ``nprobe="all"`` with ``prune=None`` selects exhaustive-parity mode.
    """

    #: Stage-1 retrieval depth N: ids the ANN index returns per query.
    retrieve_n: int = 2048
    #: Stage-2 survivors K the full model ranks; ``None`` disables pruning.
    prune: Optional[int] = 1024
    #: IVF cells probed per query; ``"all"`` scans the whole category.
    nprobe: Union[int, str] = 32
    #: IVF cells per category; ``None`` = ceil(sqrt(members)).
    clusters_per_partition: Optional[int] = None
    #: Build-time calibration: (user, category) probe queries sampled ...
    calibration_queries: int = 128
    #: ... and items scored per probe query (capped by category size).
    calibration_items: int = 256
    #: Weight multiplier on each probe query's top-``1 - _TOP_QUANTILE``
    #: scorers: retrieval recall lives at the head of the ranking, so the
    #: fit trades mean accuracy for head accuracy.
    calibration_top_weight: float = 10.0
    #: Ridge regularizer of the calibration fit.
    ridge_lambda: float = 1.0
    #: Seeds the IVF k-means and the calibration sampling (builds are
    #: deterministic given the snapshot).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retrieve_n < 1:
            raise ValueError(f"retrieve_n must be >= 1, got {self.retrieve_n}")
        if self.prune is not None and self.prune < 1:
            raise ValueError(f"prune must be >= 1 or None, got {self.prune}")
        if self.nprobe != "all" and int(self.nprobe) < 1:
            raise ValueError(f"nprobe must be >= 1 or 'all', got {self.nprobe!r}")
        if self.calibration_queries < 2:
            raise ValueError("calibration_queries must be >= 2")
        if self.calibration_items < 2:
            raise ValueError("calibration_items must be >= 2")
        if self.calibration_top_weight < 1:
            raise ValueError("calibration_top_weight must be >= 1")

    @staticmethod
    def exhaustive() -> "CascadeConfig":
        """Parity mode: scan everything, prune nothing (the test oracle)."""
        return CascadeConfig(retrieve_n=1, prune=None, nprobe="all")

    def with_exhaustive_stage1(self) -> "CascadeConfig":
        """Copy with an exact stage 1 (only the prefilter prunes)."""
        return replace(self, nprobe="all")

    @property
    def is_exhaustive(self) -> bool:
        return self.nprobe == "all" and self.prune is None


def category_popularity_probs(world: "World") -> List[np.ndarray]:
    """Per-category popularity sampling probabilities, computed once.

    Exactly the vector ``SearchEngine.retrieve`` historically rebuilt per
    query (``popularity ** 0.7 + 1e-3``, normalized within the category);
    precomputed here so the engine samples from it and the cascade reuses it
    as the index/prefilter popularity prior.
    """
    probs: List[np.ndarray] = []
    for cat in range(world.config.num_categories):
        members = np.flatnonzero(world.item_category == cat)
        if members.size == 0:
            probs.append(np.empty(0))
            continue
        weights = world.item_popularity[members] ** 0.7 + 1e-3
        probs.append(weights / weights.sum())
    return probs


def _logits(scorer, batch) -> np.ndarray:
    """Full-model log-odds for a batch, via whatever scoring surface the
    caller serves through (compiled plan or eager model)."""
    proba = np.asarray(scorer.predict_proba(batch), dtype=np.float64)
    proba = np.clip(proba, 1e-7, 1.0 - 1e-7)
    return np.log(proba) - np.log1p(-proba)


class RetrievalCascade:
    """One model version's retrieval stack: vector space, index, prefilter.

    Build order (all deterministic given the model snapshot and config):

    1. snapshot the item-embedding table; assemble the raw feature blocks;
    2. **probe pass** — every expert scores every item once under a fixed
       empty-history reference session (one exhaustive-scan equivalent, the
       dominant rebuild cost, amortized over serving);
    3. **calibration** — top-weighted ridge fit of the per-regime score
       weights against full-model logits on sampled (user, item) pairs;
    4. standardize the item matrix, build the IVF index and the prefilter.
    """

    # Vector-space layout:
    # [prior, sales, expert_probes(A*K), emb(E), dense(4), dense²(4)]
    # where A = age groups and K = experts; a session reads only its own
    # age's K-column probe block.
    _NUM_STATIC = 2  # popularity prior, sales
    _NUM_DENSE = 4  # price, popularity, quality, style (repro.data.features.item_dense)

    def __init__(
        self,
        world: "World",
        model,
        config: CascadeConfig,
        category_probs: Optional[Sequence[np.ndarray]] = None,
        scorer=None,
    ) -> None:
        """Build from a live model.  ``scorer`` optionally supplies the
        scoring surface for the gate/calibration passes (the engine hands
        over its already-compiled plan so the build does not recompile);
        defaults to the eager model."""
        self.world = world
        self.config = config
        self._model = model
        self._scorer = model if scorer is None else scorer
        if category_probs is None:
            category_probs = category_popularity_probs(world)

        # -- raw feature blocks (the embedding copy mirrors the inference
        # compiler's packing; row 0 of the table is the padding id).
        table = model.embedder.item.weight.detach_numpy()
        self._emb = np.array(table[1 : world.num_items + 1], dtype=np.float32, order="C")
        self.embed_dim = int(self._emb.shape[1])
        self._dense = item_dense(world, np.arange(world.num_items))
        priors = np.zeros(world.num_items, dtype=np.float32)
        for cat, probs in enumerate(category_probs):
            members = np.flatnonzero(world.item_category == cat)
            if members.size:
                # Rescaled by partition size so "uniform within category"
                # scores ~1 regardless of catalog scale.
                priors[members] = probs * members.size
        self._by_category = [
            np.flatnonzero(world.item_category == cat)
            for cat in range(world.config.num_categories)
        ]

        # The age one-hot block width is fixed by the feature schema, not by
        # which ages this world happened to sample.
        self.num_ages = len(AGE_GROUPS)
        expert_probes = self._probe_pass()
        #: Probe columns per age block (experts, or 1 for gateless models).
        self.num_probes = int(expert_probes.shape[1]) // self.num_ages
        raw = np.concatenate(
            [
                priors[:, None],
                world.item_sales[:, None].astype(np.float32),
                expert_probes,
                self._emb,
                self._dense,
                self._dense**2,
            ],
            axis=1,
        ).astype(np.float32)
        # Standardize columns so k-means geometry and the ridge fit see
        # comparably scaled axes; the per-query constant mean offset is
        # irrelevant to ranking, the scale is folded into session vectors.
        self._scale = (raw.std(axis=0) + 1e-6).astype(np.float32)
        self.item_vectors = np.ascontiguousarray(
            (raw - raw.mean(axis=0)) / self._scale, dtype=np.float32
        )
        self.dim = int(self.item_vectors.shape[1])

        self._weights, self._count_weights, self.calibration_r2 = self._calibrate()

        self.index = ItemIndex(
            self.item_vectors,
            world.item_category,
            world.config.num_categories,
            clusters_per_partition=config.clusters_per_partition,
            seed=config.seed,
        )
        self.prefilter = Prefilter(self.item_vectors)

    @classmethod
    def from_model(
        cls,
        model,
        world: "World",
        config: CascadeConfig,
        category_probs: Optional[Sequence[np.ndarray]] = None,
        scorer=None,
    ) -> "RetrievalCascade":
        return cls(world, model, config, category_probs=category_probs, scorer=scorer)

    def worker_view(self) -> "RetrievalCascade":
        """A per-worker handle onto this build's immutable snapshot.

        Everything expensive about a cascade — the probe pass, the
        calibration fit, the k-means index — produces *read-only* state
        (item vectors, slabs, weights) that replicas can share; only the
        prefilter's plan owns mutable scratch buffers.  The view shares the
        former and gets a fresh :class:`Prefilter`, so a sharded fleet pays
        for one build per swap instead of one per shard.

        The view still references the builder's scorer (whose gate plan is
        mutable scratch) until the owning worker calls :meth:`bind_scorer`
        with its own — :meth:`repro.serving.engine.SearchEngine.set_model`
        does so with the plan it just compiled.
        """
        view = copy.copy(self)
        view.prefilter = Prefilter(self.item_vectors)
        return view

    def bind_scorer(self, scorer) -> None:
        """Point query-time gate evaluation at this worker's own scoring
        surface.  Plans own mutable scratch, so a shared cascade view must
        not run the builder's gate plan — each worker binds the plan it
        serves with (the gate is a pure function of the weights, so any
        scorer compiled from the same snapshot yields identical vectors).
        """
        self._scorer = scorer

    def detach_for_publish(self) -> "RetrievalCascade":
        """A picklable twin of this build for shared-memory publishing.

        The expensive build output — item vectors, index slabs, calibration
        weights, the model's weight arrays — is plain numpy and ships
        zero-copy through a :class:`~repro.infer.slabs.SnapshotSlab`.  The
        two members that hold compiled-plan closures are dropped: the
        prefilter (cheap per-worker scratch, rebuilt by :meth:`worker_view`
        on the attaching side) and the scorer (each worker binds the plan it
        compiles via :meth:`bind_scorer`, exactly as in-process shards do).
        """
        detached = copy.copy(self)
        detached.prefilter = None
        detached._scorer = None
        return detached

    # ------------------------------------------------------------------
    # build passes
    # ------------------------------------------------------------------
    @property
    def _probe_user(self) -> int:
        """Reference session for the probe pass: the emptiest history in the
        world (deterministic), so the probe isolates the model's
        candidate-dependent pathway from personalization."""
        lengths = [len(h) for h in self.world.histories]
        return int(np.argmin(lengths))

    def _probe_pass(self) -> np.ndarray:
        """Per-(age, expert) scores of every item in its own category under
        the reference session — ``num_ages`` exhaustive-scan equivalents per
        build, the dominant rebuild cost.

        The batch is assembled once per category from the reference user,
        then the age one-hot block of ``other_features`` is patched per age
        group (age is a model input the reference user fixes otherwise).
        Models without an expert pool (the single-FFN baselines) contribute
        a single pseudo-expert column per age: their full-model logit.
        """
        user = self._probe_user
        has_experts = hasattr(self._model, "expert_scores")
        columns = None
        for cat, members in enumerate(self._by_category):
            if members.size == 0:
                continue
            batch = assemble_candidate_batch(self.world, user, cat, members)
            for age in range(self.num_ages):
                batch["other_features"][:, 1 : 1 + self.num_ages] = 0.0
                batch["other_features"][:, 1 + age] = 1.0
                if has_experts:
                    scores = np.asarray(self._model.expert_scores(batch), dtype=np.float32)
                else:
                    scores = _logits(self._scorer, batch)[:, None].astype(np.float32)
                if columns is None:
                    columns = np.zeros(
                        (self.world.num_items, self.num_ages * scores.shape[1]),
                        dtype=np.float32,
                    )
                width = columns.shape[1] // self.num_ages
                columns[members, age * width : (age + 1) * width] = scores
        if columns is None:  # pragma: no cover - needs a world with zero items
            columns = np.zeros((self.world.num_items, self.num_ages), dtype=np.float32)
        return columns

    def resolve_gate(
        self, user: int, query_category: int, gate: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        """The session-gate vector retrieval scores with: the supplied
        cached vector when there is one, else one gate-plan evaluation
        (``None`` for models without a candidate-independent gate).

        Callers that also *score* with the gate (the engine's single-query
        path, the micro-batcher) resolve it here once and pass it both to
        :meth:`retrieve` and to the ranker — §III-F1's one-gate-per-session
        economy extended across the whole cascade.
        """
        if gate is not None:
            return gate
        return self._session_gate(user, query_category)

    def _session_gate(self, user: int, query_category: int) -> Optional[np.ndarray]:
        """The user's session gate ``g`` (§III-F1) — the expert-activation
        vector the full model will apply to every candidate of this session.
        ``None`` when the model's gate is candidate-dependent or absent
        (baselines): the interaction block then stays zero and retrieval
        falls back to the statically weighted expert probes.
        """
        if not getattr(self._model, "gate_is_candidate_independent", False):
            return None
        members = self._by_category[query_category]
        batch = assemble_candidate_batch(self.world, user, query_category, members[:1])
        return np.asarray(self._scorer.serving_gate(batch)[0], dtype=np.float32)

    #: Calibration regimes, constant within a query → select the weight set.
    #: New users' scores are a pure function of (item, age, query) — their
    #: regime discovers the near-exact gate x age-probe solution — while the
    #: other two mirror the paper's Fig. 2 category-new/old split.
    _REGIME_NEW_USER, _REGIME_CATEGORY_NEW, _REGIME_CATEGORY_OLD = 0, 1, 2
    _REGIMES = (0, 1, 2)

    def _regime(self, user: int, query_category: int) -> int:
        history = self.world.histories[user]
        if len(history) == 0:
            return self._REGIME_NEW_USER
        if bool((self.world.item_category[history] == query_category).any()):
            return self._REGIME_CATEGORY_OLD
        return self._REGIME_CATEGORY_NEW

    @property
    def _num_terms(self) -> int:
        # static + probes + gate-interacted probes + emb-dot + quad-match + counts
        # (the calibration sees only the session's age-matched probe block).
        return self._NUM_STATIC + 2 * self.num_probes + 1 + self._NUM_DENSE + 4

    def _age_block(self, user: int) -> slice:
        """The user's age-matched probe columns in the item matrix."""
        age = int(self.world.user_age[user])
        start = self._NUM_STATIC + age * self.num_probes
        return slice(start, start + self.num_probes)

    def _pair_features(
        self, user: int, items: np.ndarray, gate: Optional[np.ndarray]
    ) -> np.ndarray:
        """Calibration design matrix: one row per item, the session-resolved
        value of every scored term (vector-space terms first, then the
        cross-feature counters)."""
        history = self.world.histories[user]
        d = self._dense[items]
        n_static, n_probes = self._NUM_STATIC, self.num_probes
        probe_cols = self.item_vectors[items][:, self._age_block(user)]
        features = np.zeros((items.size, self._num_terms), np.float32)
        features[:, :n_static] = self.item_vectors[items][:, :n_static]
        features[:, n_static : n_static + n_probes] = probe_cols
        if gate is not None:
            features[:, n_static + n_probes : n_static + 2 * n_probes] = (
                probe_cols * gate[None, :]
            )
        cursor = n_static + 2 * n_probes
        if len(history):
            features[:, cursor] = self._emb[items] @ self._emb[history].mean(axis=0)
            profile = self._dense[history].mean(axis=0)
            features[:, cursor + 1 : cursor + 1 + self._NUM_DENSE] = 2.0 * profile * d - d**2
            features[:, cursor + 1 + self._NUM_DENSE :] = self._cross_counts(user, items)
        return features

    def _cross_counts(self, user: int, items: np.ndarray) -> np.ndarray:
        """The cheap user x item cross features (capped counters + price
        gap), mirroring their ``FEATURE_NAMES`` counterparts the full model
        reads — gatherable in O(N) per query, inexpressible as a dot
        product against a static item vector."""
        world = self.world
        history = world.histories[user]
        out = np.zeros((items.size, 4), dtype=np.float32)
        if len(history) == 0:
            return out
        brand_counts = np.bincount(world.item_brand[history], minlength=world.num_brands)
        shop_counts = np.bincount(
            world.item_shop[history], minlength=world.config.num_shops
        )
        out[:, 0] = np.minimum(brand_counts[world.item_brand[items]], _BRAND_CAP)
        out[:, 1] = np.minimum(shop_counts[world.item_shop[items]], _SHOP_CAP)
        # Item repeat count via an (N, H) comparison: a bincount would be
        # O(catalog) per query, which is exactly what the cascade exists to
        # avoid (brand/shop vocabularies above are small, the item id space
        # is not).
        out[:, 2] = np.minimum(
            (items[:, None] == history[None, :]).sum(axis=1), _ITEM_CAP
        )
        history_cats = world.item_category[history]
        same_cat = history_cats[None, :] == world.item_category[items][:, None]
        cat_counts = same_cat.sum(axis=1)
        mean_price = np.where(
            cat_counts > 0,
            (same_cat * world.item_price_pct[history][None, :]).sum(axis=1)
            / np.maximum(cat_counts, 1),
            0.0,
        )
        out[:, 3] = np.where(
            cat_counts > 0, world.item_price_pct[items] - mean_price, 0.0
        )
        return out

    def _calibrate(self):
        """Top-weighted ridge fit of the cheap score against full-model logits.

        Returns per-regime ``(weights, count_weights)`` plus the in-sample
        R² (reported via :meth:`stats`; a diagnostic, not a gate).  A regime
        with no sampled rows inherits its nearest neighbour's fit, which
        keeps tiny test worlds working.
        """
        config = self.config
        world = self.world
        rng = np.random.default_rng(np.random.SeedSequence([config.seed, 0xCA11]))
        num_terms = self._num_terms
        rows: dict = {regime: ([], [], []) for regime in self._REGIMES}
        categories = [cat for cat, m in enumerate(self._by_category) if m.size > 0]
        for _ in range(config.calibration_queries):
            user = int(rng.integers(0, world.num_users))
            cat = int(categories[rng.integers(0, len(categories))])
            members = self._by_category[cat]
            sample = (
                members
                if members.size <= config.calibration_items
                else rng.choice(members, size=config.calibration_items, replace=False)
            )
            batch = assemble_candidate_batch(world, user, cat, sample)
            target = _logits(self._scorer, batch)
            # Head-weighted: what matters is whether a query's top scorers
            # land in the survivor set, not the mean error over the tail.
            sample_weight = np.where(
                target >= np.quantile(target, _TOP_QUANTILE),
                config.calibration_top_weight,
                1.0,
            )
            regime = self._regime(user, cat)
            gate = self._session_gate(user, cat)
            rows[regime][0].append(self._pair_features(user, sample, gate))
            rows[regime][1].append(target)
            rows[regime][2].append(sample_weight)

        fits: dict = {}
        r2: dict = {}
        for regime in self._REGIMES:
            if not rows[regime][0]:
                continue
            design = np.concatenate(rows[regime][0]).astype(np.float64)
            target = np.concatenate(rows[regime][1]).astype(np.float64)
            sample_weight = np.concatenate(rows[regime][2]).astype(np.float64)
            scale = design.std(axis=0) + 1e-6
            z = (design - design.mean(axis=0)) / scale
            centered = target - np.average(target, weights=sample_weight)
            weighted_z = z * sample_weight[:, None]
            gram = z.T @ weighted_z + config.ridge_lambda * np.eye(num_terms)
            weights = np.linalg.solve(gram, weighted_z.T @ centered) / scale
            fits[regime] = weights.astype(np.float32)
            variance = np.var(target)
            prediction = design @ weights
            residual = (prediction - prediction.mean()) - (target - target.mean())
            r2[regime] = (
                float(1.0 - np.mean(residual**2) / variance) if variance > 0 else 0.0
            )
        if not fits:  # pragma: no cover - needs a world with zero categories
            fallback = np.zeros(num_terms, dtype=np.float32)
            fallback[self._NUM_STATIC] = 1.0
            fits = {regime: fallback for regime in self._REGIMES}
            r2 = {regime: 0.0 for regime in self._REGIMES}
        for regime in self._REGIMES:
            if regime not in fits:
                # A regime the sample never hit inherits its nearest
                # neighbour (new-user ← category-new ← category-old).
                for fallback in sorted(fits, key=lambda other: abs(other - regime)):
                    fits[regime] = fits[fallback]
                    r2[regime] = r2[fallback]
                    break
        weights = {regime: fit[: num_terms - 4] for regime, fit in fits.items()}
        count_weights = {regime: fit[num_terms - 4 :] for regime, fit in fits.items()}
        return weights, count_weights, r2

    # ------------------------------------------------------------------
    # session vectors
    # ------------------------------------------------------------------
    def session_vector(
        self,
        user: int,
        query_category: int,
        gate: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The calibrated query vector: term weights folded into one vector
        so both stages score with a single inner product per item.

        ``gate`` accepts a precomputed session-gate vector (the serving
        cache's §III-F1 entry); by default the gate plan runs on one row.
        An empty history zeroes the embedding/profile blocks — retrieval
        degrades to the static and gate-weighted expert-probe terms, the
        behaviour a candidate generator wants for brand-new users.
        """
        weights = self._weights[self._regime(user, query_category)]
        history = self.world.histories[user]
        vec = np.zeros(self.dim, dtype=np.float32)
        n_static, n_probes, n_dense = self._NUM_STATIC, self.num_probes, self._NUM_DENSE
        vec[:n_static] = weights[:n_static]
        # Expert-probe block: only the session's age-matched columns are
        # activated, with static + gate-interacted weights.  The probe
        # columns are standardized in both the item matrix and the
        # calibration design, so the weights apply directly.
        age_block = self._age_block(user)
        vec[age_block] = weights[n_static : n_static + n_probes]
        if gate is None:
            gate = self._session_gate(user, query_category)
        if gate is not None:
            vec[age_block] += weights[n_static + n_probes : n_static + 2 * n_probes] * gate
        cursor = n_static + 2 * n_probes
        probe_end = n_static + self.num_ages * n_probes
        if len(history):
            emb_block = slice(probe_end, probe_end + self.embed_dim)
            dense_block = slice(emb_block.stop, emb_block.stop + n_dense)
            square_block = slice(dense_block.stop, None)
            # Undo the item-matrix standardization per block: the stored
            # columns are (raw - mean) / scale, so multiplying the session
            # weight by the scale recovers the raw-feature inner product
            # (the subtracted mean is a per-query constant).
            vec[emb_block] = (
                weights[cursor] * self._emb[history].mean(axis=0) * self._scale[emb_block]
            )
            profile = self._dense[history].mean(axis=0)
            dense_weights = weights[cursor + 1 : cursor + 1 + n_dense]
            vec[dense_block] = dense_weights * 2.0 * profile * self._scale[dense_block]
            vec[square_block] = -dense_weights * self._scale[square_block]
        return vec

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def retrieve(
        self,
        user: int,
        query_category: int,
        gate: Optional[np.ndarray] = None,
        trace=NULL_TRACE,
    ) -> np.ndarray:
        """Candidate ids for one (user, query) — the cascade's stages 1+2.

        A sampled ``trace`` receives one span per sub-stage
        (``session-vector``, ``ivf-probe``, ``prefilter`` → ``prune``) so a
        slow retrieval can be attributed to the index probe vs the prune.
        """
        size = self.index.partition_size(query_category)
        if size == 0:
            raise ValueError(f"category {query_category} has no items")
        with trace.span("session-vector"):
            session_vec = self.session_vector(user, query_category, gate=gate)
        topn = size if self.config.is_exhaustive else min(self.config.retrieve_n, size)
        with trace.span("ivf-probe", nprobe=self.config.nprobe, topn=topn) as probe_span:
            candidates = self.index.search(
                session_vec, query_category, topn=topn, nprobe=self.config.nprobe
            )
            probe_span.set(candidates=int(candidates.size))
        if self.config.prune is None or self.config.prune >= candidates.size:
            return candidates
        with trace.span("prefilter", candidates=int(candidates.size)):
            boost = self._cross_counts(user, candidates) @ self._count_weights[
                self._regime(user, query_category)
            ]
            with trace.span("prune", survivors=int(self.config.prune)):
                return self.prefilter.prune(
                    candidates, session_vec, self.config.prune, extra=boost
                )

    def score_candidates(
        self, user: int, query_category: int, candidates: np.ndarray
    ) -> np.ndarray:
        """The cascade's cheap score for explicit candidates (fresh array) —
        what stage 2 ranks by; the retrieval probe's oracle ranking."""
        session_vec = self.session_vector(user, query_category)
        boost = self._cross_counts(user, candidates) @ self._count_weights[
            self._regime(user, query_category)
        ]
        return self.prefilter.scores(candidates, session_vec, extra=boost).copy()

    def stats(self) -> dict:
        report = self.index.stats()
        report["retrieve_n"] = self.config.retrieve_n
        report["prune"] = self.config.prune
        report["nprobe"] = self.config.nprobe
        report["vector_dim"] = self.dim
        report["expert_probes"] = self.num_probes
        report["calibration_r2"] = {
            "new_user": self.calibration_r2[self._REGIME_NEW_USER],
            "category_new": self.calibration_r2[self._REGIME_CATEGORY_NEW],
            "category_old": self.calibration_r2[self._REGIME_CATEGORY_OLD],
        }
        return report


@dataclass(frozen=True)
class RetrievalProbe:
    """Canary check for the retrieval stage of a candidate model.

    The canary gate replays ranking metrics; a corrupted *embedding table*
    can pass those (the ranker still orders its survivors well) while the
    rebuilt index silently stops surfacing the right candidates.  The probe
    measures retrieval-stage recall of the candidate's pruned cascade
    against the candidate's **own full-model exhaustive ranking** of each
    probed category — the same oracle the cascade benchmark gates — over
    sampled (user, category) queries, failing promotion below
    ``min_recall``.  The full model judges, never the cheap score: a
    calibration that stopped tracking the model (the quiet failure mode)
    degrades this recall even though the cascade still agrees with itself.

    Each check builds the candidate's cascade fresh (pass ``scorer`` — the
    canary gate hands over its compiled plan — so the probe's build floats
    match what the fleet's swap will rebuild); the promotion swap then
    builds its own, so a promoted version pays the build twice.  Reusing
    the probe's build across the swap is an open item (ROADMAP).
    """

    world: "World"
    config: CascadeConfig
    #: (user, query_category) pairs to probe.
    queries: Tuple[Tuple[int, int], ...]
    #: Floor on mean recall@k of cascade candidates vs the exhaustive oracle.
    min_recall: float = 0.95
    k: int = 10

    def recall(self, model, scorer=None) -> float:
        """Mean recall@k of the pruned cascade vs the full-model oracle."""
        cascade = RetrievalCascade.from_model(model, self.world, self.config, scorer=scorer)
        ranker = cascade._scorer
        scores = []
        for user, category in self.queries:
            kept = set(cascade.retrieve(user, category).tolist())
            members = cascade.index.partition_ids(category)
            batch = assemble_candidate_batch(self.world, user, category, members)
            full = np.asarray(ranker.predict_proba(batch))
            top = members[np.argsort(-full, kind="stable")][: self.k]
            if top.size == 0:
                continue
            scores.append(sum(1 for item in top.tolist() if item in kept) / top.size)
        return float(np.mean(scores)) if scores else 1.0

    def check(self, model, scorer=None) -> Tuple[bool, float]:
        recall = self.recall(model, scorer=scorer)
        return recall >= self.min_recall, recall
