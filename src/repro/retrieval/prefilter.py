"""Stage-2 prefilter: a cheap linear scorer compiled as a tiny inference plan.

Between the ANN index (:mod:`repro.retrieval.index`) and the full compiled
AW-MoE sits a prefilter that prunes the index's N retrieved candidates down
to the top-K survivors the expensive ranker actually scores.  Its score is
deliberately linear — a few hundred FLOPs per candidate against the full
model's hundreds of thousands:

    score(i) = <u, x_i> + static_i + extra_i

where ``x_i`` is the item's row in the cascade's calibrated vector space
(see :mod:`repro.retrieval.cascade`: probe logit, popularity prior, sales,
embedding, dense profile and its square), ``u`` the session vector with the
calibration weights folded in, ``static_i`` an optional per-item term
computed once at build time, and ``extra_i`` an optional per-query additive
term (the cascade passes its user x item cross-feature boost here).

The scorer is built as an :class:`~repro.infer.plan.InferencePlan` over the
same kernels and :class:`~repro.infer.plan.BufferArena` the compiled model
executes in — gather, GEMV, and top-K selection all run in leased buffers,
so steady-state prefiltering allocates nothing but its output id array.
``prune=None`` (or K >= N) disables pruning: every retrieved candidate
survives, which together with ``nprobe="all"`` is the cascade's
exhaustive-parity mode.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.infer.kernels import gather_rows
from repro.infer.plan import BufferArena, InferencePlan, PlanStep

__all__ = ["Prefilter"]


class Prefilter:
    """Linear candidate scorer with an arena-backed compiled plan.

    Parameters
    ----------
    item_vectors:
        ``(num_items, D)`` item vectors, the same snapshot the
        :class:`~repro.retrieval.index.ItemIndex` slabs hold.
    static_scores:
        Optional ``(num_items,)`` precomputed per-item additive term;
        ``None`` skips the static gather entirely.
    """

    def __init__(
        self, item_vectors: np.ndarray, static_scores: Optional[np.ndarray] = None
    ) -> None:
        self.item_vectors = np.ascontiguousarray(item_vectors, dtype=np.float32)
        self.static_scores = (
            None
            if static_scores is None
            else np.ascontiguousarray(static_scores, dtype=np.float32)
        )
        if (
            self.static_scores is not None
            and self.static_scores.shape[0] != self.item_vectors.shape[0]
        ):
            raise ValueError("static_scores length must match item_vectors")
        self.dim = int(self.item_vectors.shape[1])
        self.plan = self._build_plan()

    def _build_plan(self) -> InferencePlan:
        arena = BufferArena(np.float32)
        vectors = self.item_vectors
        static = self.static_scores
        dim = self.dim

        def gather_fn(ctx: dict) -> None:
            candidates = ctx["batch"]["candidates"]
            out = arena.lease("prefilter.gather", "vecs", (candidates.shape[0], dim))
            gather_rows(vectors, candidates, out)
            ctx["candidate_vecs"] = out

        def score_fn(ctx: dict) -> None:
            candidates = ctx["batch"]["candidates"]
            rows = candidates.shape[0]
            scores = arena.lease("prefilter.score", "scores", (rows,))
            # One GEMV for the session-dependent term ...
            np.matmul(ctx["candidate_vecs"], ctx["batch"]["session_vec"], out=scores)
            if static is not None:
                # ... one gather+add for the whole static term.
                statics = arena.lease("prefilter.score", "static", (rows,))
                gather_rows(static, candidates, statics)
                scores += statics
            extra = ctx["batch"].get("extra")
            if extra is not None:
                scores += extra
            ctx["scores"] = scores

        steps = [
            PlanStep("prefilter.gather", "embed", gather_fn, reads=("candidates",), writes=("candidate_vecs",)),
            PlanStep(
                "prefilter.score",
                "mix",
                score_fn,
                reads=("candidate_vecs", "candidates", "session_vec"),
                writes=("scores",),
            ),
        ]
        return InferencePlan(
            "prefilter", steps, "scores", arena, inputs=("candidates", "session_vec")
        )

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def scores(
        self,
        candidates: np.ndarray,
        session_vec: np.ndarray,
        extra: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Prefilter scores for ``candidates`` (arena-owned, copy to keep)."""
        return self.plan.run(
            {"candidates": candidates, "session_vec": session_vec, "extra": extra}
        )

    def prune(
        self,
        candidates: np.ndarray,
        session_vec: np.ndarray,
        keep: Optional[int],
        extra: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The top-``keep`` survivors of ``candidates``, ascending id order.

        ``keep=None`` (or >= len) passes every candidate through — the
        parity mode.  Selection is ``np.argpartition`` (O(N)), and the
        ascending-id output makes the survivor *set* the only thing pruning
        decides — downstream ranking is order-canonical either way.
        """
        if keep is None or keep >= candidates.size:
            return candidates
        scores = self.scores(candidates, session_vec, extra=extra)
        survivors = np.argpartition(-scores, keep - 1)[:keep]
        return np.sort(candidates[survivors])
