"""``repro.retrieval`` — the two-stage retrieval cascade (sublinear serving).

Scoring every catalog item with the full AW-MoE is linear in catalog size,
which caps the fleet far below the "millions of items" the paper's
deployment (§III-F, Fig. 6) serves.  This package makes the pipeline around
the model sublinear::

    query ──► ItemIndex (IVF-flat ANN over the model's item embeddings)
                  │  retrieve_n ids, nprobe cells probed
                  ▼
              Prefilter (linear: bias-corrected dot + popularity/sales prior)
                  │  prune → K survivors
                  ▼
              compiled AW-MoE (repro.infer) ranks only the survivors

* :mod:`~repro.retrieval.index` — category-partitioned IVF-flat index:
  k-means coarse cells, contiguous float32 slabs, ``np.argpartition`` top-N;
* :mod:`~repro.retrieval.prefilter` — the cheap stage-1 scorer, compiled as
  a tiny :class:`~repro.infer.plan.InferencePlan` in a ``BufferArena``;
* :mod:`~repro.retrieval.cascade` — the cascade and its config, the
  exhaustive-parity oracle mode, and the canary :class:`RetrievalProbe`.

Cascades are weight snapshots: the serving engine rebuilds them from the
new model on every hot swap, atomically with the inference plan.
"""

from repro.retrieval.cascade import (
    CascadeConfig,
    RetrievalCascade,
    RetrievalProbe,
    category_popularity_probs,
)
from repro.retrieval.index import ItemIndex, kmeans
from repro.retrieval.prefilter import Prefilter

__all__ = [
    "CascadeConfig",
    "RetrievalCascade",
    "RetrievalProbe",
    "category_popularity_probs",
    "ItemIndex",
    "kmeans",
    "Prefilter",
]
