"""IVF-flat ANN index over the serving model's item-embedding table.

Production candidate generators do not scan the catalog: they keep an
inverted-file (IVF) index whose coarse quantizer maps a query vector onto a
few k-means partitions, scan only those partitions' item vectors, and return
the best matches.  This module is that structure in vectorized NumPy:

* items are first partitioned **by category** (search retrieval is
  category-constrained, exactly like the production candidate generator the
  paper's Fig. 6 sits behind), then each category is split into
  ``clusters_per_partition`` k-means cells over the item vectors;
* every category stores one **contiguous float32 slab** of its item vectors,
  ordered by cell, so probing a cell is a contiguous-slice GEMV — no gather,
  no per-item Python work;
* ``search`` scores the probed cells' rows in one shot and selects the top-N
  via ``np.argpartition`` (O(rows) instead of a full sort);
* ``nprobe`` trades recall for speed: probe few cells for sublinear scans,
  or pass ``"all"`` to scan the whole category — the **exact** brute-force
  result, which is the parity/oracle mode of the retrieval cascade
  (:mod:`repro.retrieval.cascade`).

The index is a *weight snapshot*, exactly like an
:class:`~repro.infer.plan.InferencePlan`: it copies the item vectors at
build time and is rebuilt from the new snapshot on every model hot-swap
(:meth:`repro.serving.engine.SearchEngine.set_model`), so retrieval can
never serve embeddings of a model that is no longer scoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

__all__ = ["ItemIndex", "kmeans"]


def kmeans(
    vectors: np.ndarray,
    num_clusters: int,
    rng: np.random.Generator,
    iterations: int = 8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Plain vectorized Lloyd's k-means: ``(centroids, assignments)``.

    Deterministic given ``rng``.  Distances use the expanded form
    ``||x||^2 - 2 x.c + ||c||^2`` so each iteration is one GEMM over the
    partition.  Clusters that empty out are re-seeded to the point farthest
    from its centroid, keeping every cell non-degenerate.
    """
    n = vectors.shape[0]
    num_clusters = int(min(max(num_clusters, 1), n))
    centroids = vectors[rng.choice(n, size=num_clusters, replace=False)].copy()
    x_sq = (vectors**2).sum(axis=1)
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        # (N, K) squared distances without materializing differences.
        dists = x_sq[:, None] - 2.0 * (vectors @ centroids.T) + (centroids**2).sum(axis=1)
        assignments = dists.argmin(axis=1)
        # Each point's distance to its own centroid, maintained across the
        # reseeding loop so two empty clusters in one iteration cannot both
        # steal the same farthest point (which would leave one still empty
        # with a duplicate centroid).
        own_dist = dists[np.arange(n), assignments].copy()
        for k in range(num_clusters):
            members = assignments == k
            if members.any():
                centroids[k] = vectors[members].mean(axis=0)
            else:
                farthest = int(own_dist.argmax())
                centroids[k] = vectors[farthest]
                assignments[farthest] = k
                own_dist[farthest] = -np.inf
    return centroids, assignments


@dataclass
class _Partition:
    """One category's inverted file: cell-ordered slab + coarse centroids."""

    slab: np.ndarray  # (members, D) float32, C-contiguous, ordered by cell
    ids: np.ndarray  # (members,) 0-based item ids, same order as slab rows
    centroids: np.ndarray  # (cells, D) float32
    offsets: np.ndarray  # (cells + 1,) row ranges of each cell in the slab

    @property
    def size(self) -> int:
        return int(self.ids.size)

    @property
    def num_cells(self) -> int:
        return int(self.centroids.shape[0])


class ItemIndex:
    """Category-partitioned IVF-flat index over item vectors.

    Parameters
    ----------
    vectors:
        ``(num_items, D)`` item vectors (any float dtype; stored float32).
        Any additive per-item prior belongs *in* the vectors (the cascade
        carries its popularity prior as a vector column scored by the
        session weights).
    item_category:
        ``(num_items,)`` 0-based category of every item.
    num_categories:
        Total category count (empty categories get empty partitions).
    clusters_per_partition:
        IVF cells per category; defaults to ``ceil(sqrt(members))`` — the
        classic IVF sizing that balances coarse and fine scan costs.
    seed:
        Seeds the k-means of every partition; two builds from the same
        snapshot are bitwise identical.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        item_category: np.ndarray,
        num_categories: int,
        clusters_per_partition: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be (num_items, D), got {vectors.shape}")
        if item_category.shape[0] != vectors.shape[0]:
            raise ValueError("item_category length must match vectors")
        self.dim = int(vectors.shape[1])
        self.num_items = int(vectors.shape[0])
        self._partitions: List[_Partition] = []
        for cat in range(int(num_categories)):
            members = np.flatnonzero(item_category == cat)
            self._partitions.append(
                self._build_partition(vectors, members, clusters_per_partition, seed, cat)
            )

    @staticmethod
    def _build_partition(
        vectors: np.ndarray,
        members: np.ndarray,
        clusters_per_partition: Optional[int],
        seed: int,
        cat: int,
    ) -> _Partition:
        if members.size == 0:
            empty = np.empty((0, vectors.shape[1]), dtype=np.float32)
            return _Partition(
                slab=empty,
                ids=members.astype(np.int64),
                centroids=empty.copy(),
                offsets=np.zeros(1, dtype=np.int64),
            )
        cells = (
            int(np.ceil(np.sqrt(members.size)))
            if clusters_per_partition is None
            else int(clusters_per_partition)
        )
        member_vectors = vectors[members]
        rng = np.random.default_rng(np.random.SeedSequence([seed, cat]))
        centroids, assignments = kmeans(member_vectors, cells, rng)
        # Cell-order the slab (stable so equal assignments keep id order,
        # making builds reproducible and ties deterministic downstream).
        order = np.argsort(assignments, kind="stable")
        counts = np.bincount(assignments, minlength=centroids.shape[0])
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return _Partition(
            slab=np.ascontiguousarray(member_vectors[order]),
            ids=members[order].astype(np.int64),
            centroids=np.ascontiguousarray(centroids),
            offsets=offsets,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def partition_size(self, category: int) -> int:
        return self._partitions[category].size

    def partition_ids(self, category: int) -> np.ndarray:
        """All item ids of one category (index order, copy)."""
        return self._partitions[category].ids.copy()

    @property
    def nbytes(self) -> int:
        """Bytes held by slabs + centroids (the index's resident set)."""
        return sum(p.slab.nbytes + p.centroids.nbytes for p in self._partitions)

    def stats(self) -> dict:
        sizes = [p.size for p in self._partitions]
        return {
            "num_items": self.num_items,
            "dim": self.dim,
            "partitions": len(self._partitions),
            "cells": sum(p.num_cells for p in self._partitions),
            "largest_partition": max(sizes) if sizes else 0,
            "nbytes": self.nbytes,
        }

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        category: int,
        topn: int,
        nprobe: Union[int, str] = 8,
    ) -> np.ndarray:
        """Top-``topn`` item ids of ``category`` by ``<query, x>``.

        ``nprobe`` cells are scanned (``"all"`` scans the whole partition —
        exact brute force).  Returns 0-based ids in **ascending id order**:
        the caller re-ranks with a real scorer, and a canonical order makes
        candidate sets reproducible and tie-breaks deterministic.
        """
        part = self._partitions[category]
        if part.size == 0:
            return np.empty(0, dtype=np.int64)
        query = np.asarray(query, dtype=np.float32)
        probe_all = nprobe == "all" or int(nprobe) >= part.num_cells
        if probe_all:
            scores = part.slab @ query
            ids = part.ids
        else:
            nprobe = int(nprobe)
            if nprobe < 1:
                raise ValueError(f"nprobe must be >= 1 or 'all', got {nprobe}")
            coarse = part.centroids @ query
            probed = np.argpartition(-coarse, nprobe - 1)[:nprobe]
            spans = [
                (int(part.offsets[cell]), int(part.offsets[cell + 1])) for cell in probed
            ]
            rows = sum(stop - start for start, stop in spans)
            scores = np.empty(rows, dtype=np.float32)
            ids = np.empty(rows, dtype=np.int64)
            cursor = 0
            for start, stop in spans:
                width = stop - start
                # Contiguous-slice GEMV: the slab is cell-ordered, so each
                # probed cell is one BLAS call over its rows.
                np.matmul(part.slab[start:stop], query, out=scores[cursor : cursor + width])
                ids[cursor : cursor + width] = part.ids[start:stop]
                cursor += width
        if topn >= ids.size:
            return np.sort(ids.copy())
        keep = np.argpartition(-scores, topn - 1)[:topn]
        return np.sort(ids[keep])
