"""Declarative alerting over the fleet's telemetry.

Dashboards answer "what is happening"; alerts answer "should a human look".
:class:`AlertRule` is a predicate over one scalar in a flat **telemetry
snapshot** — metric values and histogram quantiles from a
:class:`~repro.obs.streaming.MetricsRegistry`, SLO burn rate from a
:class:`~repro.obs.slo.SloTracker`, and PSI/KS scores from a
:class:`~repro.obs.drift.DriftMonitor` — and :class:`AlertManager` evaluates
every rule against each snapshot with **hysteresis**: a rule must breach
``for_count`` consecutive evaluations before it fires and must clear
``clear_count`` consecutive evaluations before it resolves, so a single
noisy window neither pages nor flaps.

Transitions land as typed ``alert_fired`` / ``alert_resolved`` events in an
:class:`~repro.obs.events.EventLog` — the same control-plane log that holds
hot swaps and canary verdicts, so ``fleet_report()``'s event tail interleaves
"the model swapped" with "drift alarmed" in one timeline.

Rules parse from a one-line declarative syntax (used by configs, tests, and
the README runbook)::

    drift_psi_ctr > 0.25 for 2
    ctr-drift: drift_psi_ctr > 0.25 for 2 clear 3 severity critical

``<metric> <op> <threshold>`` with optional ``for N`` (breaches to fire),
``clear N`` (clears to resolve), ``severity S``, and an optional leading
``name:`` label.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.drift import DriftMonitor
from repro.obs.events import EventLog
from repro.obs.slo import SloTracker
from repro.obs.streaming import Counter, Gauge, MetricsRegistry, StreamingHistogram

__all__ = ["AlertRule", "AlertTransition", "AlertManager", "telemetry_snapshot"]

_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}

_RULE_RE = re.compile(
    r"^\s*(?:(?P<name>[\w.-]+)\s*:)?\s*"
    r"(?P<metric>[A-Za-z_:][\w:.]*)\s*"
    r"(?P<op><=|>=|<|>)\s*"
    r"(?P<threshold>[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)"
    r"(?:\s+for\s+(?P<for_count>\d+))?"
    r"(?:\s+clear\s+(?P<clear_count>\d+))?"
    r"(?:\s+severity\s+(?P<severity>\w+))?\s*$"
)


@dataclass(frozen=True)
class AlertRule:
    """One threshold predicate over a snapshot scalar, with hysteresis."""

    name: str
    metric: str
    op: str
    threshold: float
    for_count: int = 1
    clear_count: int = 1
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r}; known: {sorted(_OPS)}")
        if self.for_count < 1:
            raise ValueError(f"for_count must be >= 1, got {self.for_count}")
        if self.clear_count < 1:
            raise ValueError(f"clear_count must be >= 1, got {self.clear_count}")

    def breached(self, value: float) -> bool:
        return _OPS[self.op](float(value), self.threshold)

    def describe(self) -> str:
        parts = [f"{self.name}: {self.metric} {self.op} {self.threshold:g}"]
        if self.for_count != 1:
            parts.append(f"for {self.for_count}")
        if self.clear_count != 1:
            parts.append(f"clear {self.clear_count}")
        parts.append(f"severity {self.severity}")
        return " ".join(parts)

    @staticmethod
    def parse(text: str) -> "AlertRule":
        """Parse the declarative one-line rule syntax (see module doc)."""
        match = _RULE_RE.match(text)
        if match is None:
            raise ValueError(
                f"unparseable alert rule {text!r}; expected "
                "'[name:] <metric> <op> <threshold> [for N] [clear N] [severity S]'"
            )
        groups = match.groupdict()
        return AlertRule(
            name=groups["name"] or groups["metric"],
            metric=groups["metric"],
            op=groups["op"],
            threshold=float(groups["threshold"]),
            for_count=int(groups["for_count"] or 1),
            clear_count=int(groups["clear_count"] or 1),
            severity=groups["severity"] or "warning",
        )


@dataclass
class AlertTransition:
    """One fire/resolve edge produced by an evaluation."""

    rule: AlertRule
    action: str  # "fired" | "resolved"
    value: Optional[float]
    timestamp: float


@dataclass
class _RuleState:
    breach_streak: int = 0
    clear_streak: int = 0
    firing: bool = False
    last_value: Optional[float] = None
    fired_count: int = 0
    resolved_count: int = 0
    history: List[Tuple[float, str]] = field(default_factory=list)


def telemetry_snapshot(
    registry: Optional[MetricsRegistry] = None,
    slo: Optional[SloTracker] = None,
    drift: Optional[DriftMonitor] = None,
    extra: Optional[Dict[str, float]] = None,
) -> Dict[str, float]:
    """Flatten the fleet's telemetry into the scalar namespace rules see.

    * counters/gauges → ``<name>``;
    * histograms → ``<name>_p50`` / ``_p95`` / ``_p99`` / ``_mean`` /
      ``_count``;
    * SLO → ``slo_p99_ms``, ``slo_violation_rate``, ``slo_burn_rate``;
    * drift → ``drift_psi_<feature>``, ``drift_ks_<feature>``, plus the
      headline ``drift_psi_worst``;
    * ``extra`` merges last (callers inject e.g. ``retrieval_recall_at_k``
      or click-log lag).
    """
    snapshot: Dict[str, float] = {}
    if registry is not None:
        for name, metric in registry:
            if isinstance(metric, (Counter, Gauge)):
                snapshot[name] = float(metric.value)
            elif isinstance(metric, StreamingHistogram):
                snapshot[f"{name}_count"] = float(metric.count)
                snapshot[f"{name}_mean"] = metric.mean
                if metric.count:
                    snapshot[f"{name}_p50"] = metric.quantile(50)
                    snapshot[f"{name}_p95"] = metric.quantile(95)
                    snapshot[f"{name}_p99"] = metric.quantile(99)
    if slo is not None:
        status = slo.status()
        snapshot["slo_p99_ms"] = float(status["p99_ms"])
        snapshot["slo_violation_rate"] = float(status["violation_rate"])
        snapshot["slo_burn_rate"] = float(status["error_budget_burn_rate"])
    if drift is not None:
        worst_psi = 0.0
        for feature, scores in drift.scores().items():
            snapshot[f"drift_psi_{feature}"] = scores["psi"]
            snapshot[f"drift_ks_{feature}"] = scores["ks"]
            worst_psi = max(worst_psi, scores["psi"])
        snapshot["drift_psi_worst"] = worst_psi
    if extra:
        for name, value in extra.items():
            snapshot[name] = float(value)
    return snapshot


class AlertManager:
    """Evaluate a rule set against successive telemetry snapshots.

    Parameters
    ----------
    rules:
        :class:`AlertRule` instances or declarative rule strings (parsed via
        :meth:`AlertRule.parse`).
    events:
        Optional :class:`~repro.obs.events.EventLog`; fire/resolve
        transitions are recorded there as ``alert_fired`` /
        ``alert_resolved`` events.  The online loop binds this to the
        cluster's control-plane log so alerts share the deployment timeline.
    """

    def __init__(
        self,
        rules: Sequence[Any] = (),
        events: Optional[EventLog] = None,
    ) -> None:
        self.rules: List[AlertRule] = []
        self.events = events
        self._states: Dict[str, _RuleState] = {}
        self.evaluations = 0
        for rule in rules:
            self.add_rule(rule)

    def add_rule(self, rule: Any) -> AlertRule:
        if isinstance(rule, str):
            rule = AlertRule.parse(rule)
        if not isinstance(rule, AlertRule):
            raise TypeError(f"expected AlertRule or rule string, got {type(rule).__name__}")
        if rule.name in self._states:
            raise ValueError(f"duplicate alert rule name {rule.name!r}")
        self.rules.append(rule)
        self._states[rule.name] = _RuleState()
        return rule

    def evaluate(self, snapshot: Dict[str, float], now: float) -> List[AlertTransition]:
        """One evaluation pass; returns the fire/resolve edges it produced.

        A metric absent from the snapshot counts as healthy — no data is
        not an incident (the drift monitor reports nothing before its first
        reference freeze, and that must not page).
        """
        self.evaluations += 1
        transitions: List[AlertTransition] = []
        for rule in self.rules:
            state = self._states[rule.name]
            value = snapshot.get(rule.metric)
            state.last_value = None if value is None else float(value)
            breached = value is not None and rule.breached(value)
            if breached:
                state.breach_streak += 1
                state.clear_streak = 0
                if not state.firing and state.breach_streak >= rule.for_count:
                    state.firing = True
                    state.fired_count += 1
                    state.history.append((float(now), "fired"))
                    transitions.append(AlertTransition(rule, "fired", state.last_value, now))
                    if self.events is not None:
                        self.events.record(
                            "alert_fired",
                            now,
                            rule=rule.name,
                            metric=rule.metric,
                            value=state.last_value,
                            threshold=rule.threshold,
                            op=rule.op,
                            severity=rule.severity,
                        )
            else:
                state.clear_streak += 1
                state.breach_streak = 0
                if state.firing and state.clear_streak >= rule.clear_count:
                    state.firing = False
                    state.resolved_count += 1
                    state.history.append((float(now), "resolved"))
                    transitions.append(AlertTransition(rule, "resolved", state.last_value, now))
                    if self.events is not None:
                        self.events.record(
                            "alert_resolved",
                            now,
                            rule=rule.name,
                            metric=rule.metric,
                            value=state.last_value,
                            threshold=rule.threshold,
                            severity=rule.severity,
                        )
        return transitions

    def firing(self) -> Tuple[str, ...]:
        """Names of every currently firing rule."""
        return tuple(name for name, state in self._states.items() if state.firing)

    def is_firing(self, name: str) -> bool:
        state = self._states.get(name)
        return state is not None and state.firing

    def status(self) -> List[Dict[str, Any]]:
        """One row per rule (dashboard / report table)."""
        return [
            {
                "rule": rule.name,
                "metric": rule.metric,
                "op": rule.op,
                "threshold": rule.threshold,
                "severity": rule.severity,
                "firing": self._states[rule.name].firing,
                "last_value": self._states[rule.name].last_value,
                "fired_count": self._states[rule.name].fired_count,
                "resolved_count": self._states[rule.name].resolved_count,
            }
            for rule in self.rules
        ]
