"""Shadow-sampled live retrieval recall: the online RetrievalProbe.

The cascade's recall — the known quality bottleneck (ROADMAP item 5) — is
measured at build time and at canary time, both against *sampled or logged*
queries.  Neither sees what live traffic actually asks for.  The shadow
monitor closes that gap: the serving engine re-runs a small head-sampled
fraction of real ``retrieve()`` calls through the exhaustive oracle
(``nprobe="all"``, ``prune=None`` — the full-model top-k over every category
member) *after* answering the query, and records what fraction of the oracle
top-k the cascade's survivor set kept.

This module owns only the sampling decision and the bookkeeping; the engine
owns the oracle computation (it has the model and the catalog).  Head
sampling mirrors :class:`~repro.obs.trace.Tracer`: one seeded RNG draw per
retrieval, so the unsampled hot path pays a single ``random()`` call and the
decision is reproducible across runs.

The running recall publishes as a ``retrieval_recall_at_k`` gauge when a
:class:`~repro.obs.streaming.MetricsRegistry` is attached, and the full
per-sample distribution lands in a streaming histogram so the dashboard can
show the spread, not just the mean.  Monitors merge associatively across
shards (sample counts and histograms add).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.obs.streaming import MetricsRegistry, StreamingHistogram

__all__ = ["ShadowRecallMonitor"]

#: Bucket layout for the per-sample recall distribution: recall lives in
#: ``[0, 1]`` and 2% relative resolution is plenty for a quality signal.
_RECALL_HIST_KWARGS = dict(min_value=1e-2, growth=1.04, num_buckets=128)


class ShadowRecallMonitor:
    """Head-sampled live recall@k bookkeeping for the serving engine.

    Parameters
    ----------
    rate:
        Fraction of live ``retrieve()`` calls shadowed through the
        exhaustive oracle (default 0.5% — the oracle is a full category
        scan, so this must stay far off the hot path).  ``0.0`` disables
        sampling entirely; ``1.0`` shadows every call (tests/benchmarks).
    k:
        The oracle depth: recall@k of the survivor set vs the full-model
        top-``k``.
    registry:
        Optional :class:`~repro.obs.streaming.MetricsRegistry`; when set,
        every observation refreshes the ``retrieval_recall_at_k`` gauge
        (running mean) and a ``retrieval_shadow_recall`` histogram.
    seed:
        Seeds the sampling RNG — shadowed replays are deterministic.
    """

    def __init__(
        self,
        rate: float = 0.005,
        k: int = 10,
        registry: Optional[MetricsRegistry] = None,
        seed: int = 0,
        gauge_name: str = "retrieval_recall_at_k",
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.rate = float(rate)
        self.k = int(k)
        self.registry = registry
        self.gauge_name = gauge_name
        self._rng = random.Random(seed)
        self.requests = 0
        self.samples = 0
        self._recall_sum = 0.0
        self.last_recall: Optional[float] = None
        self.histogram = StreamingHistogram(
            "retrieval_shadow_recall", "per-sample shadow recall@k", **_RECALL_HIST_KWARGS
        )

    def should_sample(self) -> bool:
        """One head-sampling decision per live retrieval (seeded RNG)."""
        self.requests += 1
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        return self._rng.random() < self.rate

    def observe(self, recall: float) -> None:
        """Record one shadow measurement (engine computed the oracle)."""
        recall = float(recall)
        if not 0.0 <= recall <= 1.0:
            raise ValueError(f"recall must be in [0, 1], got {recall}")
        self.samples += 1
        self._recall_sum += recall
        self.last_recall = recall
        self.histogram.record(recall)
        if self.registry is not None:
            self.registry.gauge(
                self.gauge_name, "live shadow-sampled retrieval recall@k (running mean)"
            ).set(self.recall_at_k)

    @property
    def recall_at_k(self) -> float:
        """Running mean recall@k over every shadowed call (0.0 before any)."""
        return self._recall_sum / self.samples if self.samples else 0.0

    def merge(self, other: "ShadowRecallMonitor") -> "ShadowRecallMonitor":
        """Associative fold of per-shard monitors (counts and sums add)."""
        if self.k != other.k:
            raise ValueError(f"cannot merge monitors with k={self.k} and k={other.k}")
        merged = ShadowRecallMonitor(
            rate=max(self.rate, other.rate), k=self.k, gauge_name=self.gauge_name
        )
        merged.requests = self.requests + other.requests
        merged.samples = self.samples + other.samples
        merged._recall_sum = self._recall_sum + other._recall_sum
        merged.last_recall = other.last_recall if other.last_recall is not None else self.last_recall
        merged.histogram = self.histogram.merge(other.histogram)
        return merged

    def stats(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "k": self.k,
            "requests": self.requests,
            "samples": self.samples,
            "recall_at_k": self.recall_at_k,
            "last_recall": self.last_recall,
            "p50": self.histogram.quantile(50) if self.samples else 0.0,
        }
