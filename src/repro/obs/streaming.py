"""Streaming metrics: counters, gauges, exponential-bucket histograms.

The serving fleet's original :class:`~repro.serving.metrics.MetricsSink`
kept every latency in a Python list — O(queries) memory, unusable past a few
million requests.  The primitives here are **fixed-size**:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Gauge` — a point-in-time value (queue depth, click-log lag);
* :class:`StreamingHistogram` — a bounded array of exponentially sized
  buckets.  With growth factor ``g`` per bucket and geometric-midpoint
  quantile estimates, the relative quantile error is bounded by
  ``sqrt(g) - 1`` (≈ 2% at the default ``g = 1.04``) for any value inside
  the covered range — property-tested in ``tests/obs``;
* :class:`MetricsRegistry` — a named collection of the above, exportable as
  a Prometheus text snapshot or JSON.

All three merge associatively (bucket counts and counters add), so per-shard
instances fold into one fleet view in any order — the same property the
list-based sink had, at O(1) memory per shard.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

__all__ = ["Counter", "Gauge", "StreamingHistogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class Counter:
    """Monotonically increasing count; merges by addition."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str = "", help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        merged = Counter(self.name or other.name, self.help or other.help)
        merged.value = self.value + other.value
        return merged


class Gauge:
    """Point-in-time value; merges by **max** (worst shard wins), matching
    its fleet uses — click-log lag, queue depth — where the alarming value
    is the one that matters."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str = "", help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def merge(self, other: "Gauge") -> "Gauge":
        merged = Gauge(self.name or other.name, self.help or other.help)
        merged.value = max(self.value, other.value)
        return merged


class StreamingHistogram:
    """Fixed-size exponential-bucket histogram with bounded quantile error.

    Bucket ``0`` covers ``[0, min_value]``; bucket ``i >= 1`` covers
    ``(min_value * growth**(i-1), min_value * growth**i]``.  Quantiles
    return the geometric midpoint of the bucket holding the nearest-rank
    sample, clamped into the exactly tracked ``[min, max]`` — relative error
    at most ``sqrt(growth) - 1`` for values in the covered range (values
    below ``min_value`` or beyond the last bucket saturate at the edges;
    pick ``min_value`` below the smallest value you care to resolve).

    ``count``/``sum``/``min``/``max`` are tracked exactly, so the mean is
    exact; only quantiles are approximate.  Memory is ``num_buckets`` int64
    slots regardless of how many samples are recorded.
    """

    __slots__ = (
        "name",
        "help",
        "min_value",
        "growth",
        "num_buckets",
        "counts",
        "count",
        "total",
        "min",
        "max",
        "_log_growth",
    )

    def __init__(
        self,
        name: str = "",
        help: str = "",
        min_value: float = 1e-4,
        growth: float = 1.04,
        num_buckets: int = 2048,
    ) -> None:
        if min_value <= 0:
            raise ValueError(f"min_value must be > 0, got {min_value}")
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        if num_buckets < 2:
            raise ValueError(f"num_buckets must be >= 2, got {num_buckets}")
        self.name = name
        self.help = help
        self.min_value = float(min_value)
        self.growth = float(growth)
        self.num_buckets = int(num_buckets)
        self.counts = np.zeros(self.num_buckets, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._log_growth = math.log(self.growth)

    @property
    def quantile_error_bound(self) -> float:
        """Worst-case relative quantile error inside the covered range."""
        return math.sqrt(self.growth) - 1.0

    def _bucket_index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        index = int(math.log(value / self.min_value) / self._log_growth) + 1
        return min(index, self.num_buckets - 1)

    def record(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        self.counts[self._bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, values) -> None:
        for value in values:
            self.record(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_upper_edge(self, index: int) -> float:
        """Inclusive upper bound of bucket ``index``."""
        if index <= 0:
            return self.min_value
        return self.min_value * self.growth**index

    def quantile(self, p: float) -> float:
        """Nearest-rank quantile estimate (0.0 when empty).

        Same contract as :func:`repro.serving.metrics.latency_percentile`:
        ``p`` in ``(0, 100]``, nearest-rank semantics — the bucket holding
        the rank-th smallest sample supplies its geometric midpoint.
        """
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = max(int(math.ceil(p / 100.0 * self.count)), 1)
        cumulative = np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, rank, side="left"))
        if index == 0:
            estimate = self.min_value
        else:
            estimate = self.min_value * self.growth ** (index - 0.5)
        # Clamp into the exactly tracked range: the true sample can never
        # lie outside [min, max], so neither should the estimate.
        return min(max(estimate, self.min), self.max)

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Associative union; both operands must share the bucket layout."""
        if (self.min_value, self.growth, self.num_buckets) != (
            other.min_value,
            other.growth,
            other.num_buckets,
        ):
            raise ValueError("cannot merge histograms with different bucket layouts")
        merged = StreamingHistogram(
            self.name or other.name,
            self.help or other.help,
            min_value=self.min_value,
            growth=self.growth,
            num_buckets=self.num_buckets,
        )
        np.add(self.counts, other.counts, out=merged.counts)
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def nonzero_buckets(self) -> Iterator[Tuple[int, int]]:
        """``(bucket index, count)`` for every populated bucket."""
        for index in np.flatnonzero(self.counts):
            yield int(index), int(self.counts[index])

    def to_dict(self) -> Dict[str, Any]:
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            "p50": self.quantile(50),
            "p95": self.quantile(95),
            "p99": self.quantile(99),
        }


Metric = Union[Counter, Gauge, StreamingHistogram]


class MetricsRegistry:
    """Named metrics with get-or-create access and text/JSON export.

    ``counter``/``gauge``/``histogram`` return the existing instance when
    the name is already registered (so call sites need no "does it exist
    yet?" dance) and raise if the name is bound to a different metric type.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory, kind: type) -> Metric:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(existing).__name__}, not a {kind.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), Gauge)

    def histogram(self, name: str, help: str = "", **kwargs: Any) -> StreamingHistogram:
        existing = self._metrics.get(name)
        if isinstance(existing, StreamingHistogram):
            # A second registration must agree on the bucket layout: silently
            # returning the existing histogram under different kwargs would
            # hand the caller the wrong resolution (and make later shard
            # merges fail far from the offending call site).
            for key, value in kwargs.items():
                if key not in ("min_value", "growth", "num_buckets"):
                    raise TypeError(f"unknown histogram option {key!r} for {name!r}")
                if float(getattr(existing, key)) != float(value):
                    raise ValueError(
                        f"histogram {name!r} already registered with "
                        f"{key}={getattr(existing, key)!r}, conflicting with {key}={value!r}"
                    )
        return self._get_or_create(
            name, lambda: StreamingHistogram(name, help, **kwargs), StreamingHistogram
        )

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[Tuple[str, Metric]]:
        return iter(self._metrics.items())

    def __len__(self) -> int:
        return len(self._metrics)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Union of both registries; shared names merge metric-wise."""
        merged = MetricsRegistry()
        for name, metric in self._metrics.items():
            twin = other._metrics.get(name)
            merged._metrics[name] = metric.merge(twin) if twin is not None else metric
        for name, metric in other._metrics.items():
            if name not in merged._metrics:
                merged._metrics[name] = metric
        return merged

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, StreamingHistogram):
                payload[name] = {"type": "histogram", **metric.to_dict()}
            elif isinstance(metric, Counter):
                payload[name] = {"type": "counter", "value": metric.value}
            else:
                payload[name] = {"type": "gauge", "value": metric.value}
        return payload

    def prometheus_text(self) -> str:
        """Prometheus exposition-format snapshot.

        Histograms emit cumulative ``_bucket{le=...}`` lines at the upper
        edges of populated buckets only (a dense dump of 2048 mostly-empty
        buckets per histogram would swamp the scrape), plus the standard
        ``_sum``/``_count`` pair and ``le="+Inf"``.
        """
        lines: List[str] = []
        for name, metric in self._metrics.items():
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_format_value(metric.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                cumulative = 0
                for index, count in metric.nonzero_buckets():
                    cumulative += count
                    edge = _format_value(metric.bucket_upper_edge(index))
                    lines.append(f'{name}_bucket{{le="{edge}"}} {cumulative}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{name}_sum {_format_value(metric.total)}")
                lines.append(f"{name}_count {metric.count}")
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    return f"{value:.6g}"
