"""Fleet dashboard: one self-contained HTML file from the telemetry objects.

Everything the fleet knows about itself — streaming metrics, SLO status,
control-plane events, drift scores, shadow recall, alert states, and a few
sampled refresh/request span trees — rendered into a single HTML document
with inline CSS and zero external references, so the file works as a CI
artifact, an email attachment, or a ``file://`` open on a laptop with no
server and no network.

The renderer is deliberately dumb: it takes the same objects the text
``fleet_report()`` reads (plus optional drift/alert/shadow monitors) and
lays them out as tables, definition lists and pure-CSS bar charts.  Span
trees render as nested ``<details>`` elements — click to fold — with
per-span duration bars scaled to the trace's critical path.
"""

from __future__ import annotations

import html
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.events import EventLog
from repro.obs.slo import SloTracker
from repro.obs.streaming import Counter, Gauge, MetricsRegistry, StreamingHistogram

__all__ = ["render_dashboard", "write_dashboard"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif; margin: 2rem;
       background: #fafafa; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.05rem; margin-top: 2rem;
     border-bottom: 2px solid #d0d0e0; padding-bottom: 0.3rem; }
table { border-collapse: collapse; margin: 0.6rem 0; font-size: 0.85rem; }
th, td { border: 1px solid #d8d8e8; padding: 0.25rem 0.6rem; text-align: left; }
th { background: #eef0f8; }
tr.firing td { background: #ffe3e3; }
tr.ok td { background: #e7f7ec; }
.bar { display: inline-block; height: 0.65rem; background: #5b7cfa;
       border-radius: 2px; vertical-align: middle; }
.bar.warn { background: #e8833a; }
details { margin-left: 1.1rem; font-size: 0.85rem; }
details.trace { margin-left: 0; margin-bottom: 0.8rem; border-left: 3px solid #d0d0e0;
                padding-left: 0.6rem; }
summary { cursor: pointer; font-family: ui-monospace, monospace; }
.dur { color: #666; } .attrs { color: #888; font-size: 0.78rem; }
.pill { display: inline-block; padding: 0.05rem 0.5rem; border-radius: 999px;
        font-size: 0.75rem; font-weight: 600; }
.pill.ok { background: #c9eed4; color: #14532d; }
.pill.bad { background: #fdd3d3; color: #7f1d1d; }
footer { margin-top: 2.5rem; color: #999; font-size: 0.75rem; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _plain(value: Any) -> str:
    """Number-aware str() with NO escaping — for strings that will be
    escaped exactly once later (table cells, attr summaries)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    return f"{value:.4g}"


def _fmt(value: Any) -> str:
    return html.escape(_plain(value))


def _table(headers: Sequence[str], rows: Iterable[Sequence[Any]], row_classes=None) -> str:
    row_classes = row_classes or []
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body: List[str] = []
    for index, row in enumerate(rows):
        cls = f' class="{row_classes[index]}"' if index < len(row_classes) else ""
        cells = "".join(f"<td>{cell if str(cell).startswith('<span') else _fmt(cell)}</td>"
                        for cell in row)
        body.append(f"<tr{cls}>{cells}</tr>")
    return f"<table><tr>{head}</tr>{''.join(body)}</table>"


def _bar(fraction: float, warn: bool = False, width_px: int = 140) -> str:
    fraction = min(max(float(fraction), 0.0), 1.0)
    cls = "bar warn" if warn else "bar"
    return f'<span class="{cls}" style="width:{fraction * width_px:.0f}px"></span>'


def _summary_section(summary: Mapping[str, Any]) -> str:
    rows = [[key, _fmt(value)] for key, value in summary.items()
            if isinstance(value, (int, float, str, bool))]
    return "<h2>Fleet summary</h2>" + _table(["key", "value"], rows)


def _registry_section(registry: MetricsRegistry) -> str:
    counter_rows: List[List[Any]] = []
    gauge_rows: List[List[Any]] = []
    hist_rows: List[List[Any]] = []
    for name, metric in sorted(registry, key=lambda item: item[0]):
        if isinstance(metric, Counter):
            counter_rows.append([name, metric.value])
        elif isinstance(metric, Gauge):
            gauge_rows.append([name, _fmt(metric.value)])
        elif isinstance(metric, StreamingHistogram):
            snap = metric.to_dict()
            hist_rows.append([
                name, snap["count"], _fmt(snap["mean"]), _fmt(snap["p50"]),
                _fmt(snap["p95"]), _fmt(snap["p99"]), _fmt(snap["max"]),
            ])
    parts = ["<h2>Metrics</h2>"]
    if hist_rows:
        parts.append(_table(["histogram", "count", "mean", "p50", "p95", "p99", "max"], hist_rows))
    if gauge_rows:
        parts.append(_table(["gauge", "value"], gauge_rows))
    if counter_rows:
        parts.append(_table(["counter", "value"], counter_rows))
    return "".join(parts)


def _slo_section(slo: SloTracker) -> str:
    status = slo.status()
    healthy = bool(status["healthy"])
    pill = '<span class="pill ok">HEALTHY</span>' if healthy else '<span class="pill bad">BURNING</span>'
    rows = [[key, _fmt(value)] for key, value in status.items() if key != "healthy"]
    return f"<h2>SLO {pill}</h2>" + _table(["key", "value"], rows)


def _events_section(events: EventLog, tail: int = 20) -> str:
    rows = [
        [f"{event.timestamp:.3f}", event.kind,
         ", ".join(f"{k}={_plain(v)}" for k, v in event.attrs.items())]
        for event in events.tail(tail)
    ]
    counts = ", ".join(f"{kind}: {count}" for kind, count in sorted(events.counts().items()))
    section = f"<h2>Control-plane events</h2><p class='attrs'>totals — {_esc(counts)}</p>"
    if rows:
        section += _table(["t", "kind", "attrs"], rows)
    return section


def _drift_section(drift: Any) -> str:
    snapshot = drift.to_dict()
    rows: List[List[Any]] = []
    classes: List[str] = []
    for feature, scores in sorted(snapshot["features"].items()):
        psi = scores["psi"]
        rows.append([
            feature, _fmt(psi), _bar(psi / 0.5, warn=psi > 0.25), _fmt(scores["ks"]),
            scores["live_samples"], scores["reference_samples"],
        ])
        classes.append("firing" if psi > 0.25 else "")
    header = "<h2>Drift (live vs training reference)</h2>"
    if not snapshot["has_reference"]:
        return header + "<p class='attrs'>no reference frozen yet — scores appear after the first promotion</p>"
    meta = (f"<p class='attrs'>reference window: {snapshot['reference_samples']} samples, "
            f"{snapshot['freezes']} freeze(s); worst feature: "
            f"{_esc(snapshot['worst_feature'])} (PSI {_fmt(snapshot['worst_psi'])})</p>")
    return header + meta + _table(
        ["feature", "PSI", "", "KS", "live n", "ref n"], rows, row_classes=classes
    )


def _alerts_section(alerts: Any) -> str:
    rows: List[List[Any]] = []
    classes: List[str] = []
    for row in alerts.status():
        state = '<span class="pill bad">FIRING</span>' if row["firing"] else '<span class="pill ok">ok</span>'
        rows.append([
            row["rule"], f"{row['metric']} {row['op']} {_fmt(row['threshold'])}",
            row["severity"],
            "—" if row["last_value"] is None else _fmt(row["last_value"]),
            row["fired_count"], state,
        ])
        classes.append("firing" if row["firing"] else "ok")
    return "<h2>Alerts</h2>" + _table(
        ["rule", "predicate", "severity", "last value", "times fired", "state"],
        rows, row_classes=classes,
    )


def _resilience_section(
    breakers: Optional[Sequence[Mapping[str, Any]]],
    tiers: Optional[Mapping[str, int]],
) -> str:
    parts = ["<h2>Resilience</h2>"]
    if tiers is not None:
        total = sum(tiers.values()) or 1
        tier_rows = []
        tier_classes = []
        for tier in ("full", "prefilter", "popularity"):
            count = int(tiers.get(tier, 0))
            share = count / total
            tier_rows.append([tier, count, f"{share:.2%}", _bar(share, warn=tier != "full")])
            tier_classes.append("" if tier == "full" or count == 0 else "firing")
        parts.append(_table(
            ["tier", "responses", "share", ""], tier_rows, row_classes=tier_classes
        ))
    if breakers:
        rows = []
        classes = []
        for entry in breakers:
            state = str(entry.get("state", "closed"))
            pill = (
                '<span class="pill ok">closed</span>'
                if state == "closed"
                else f'<span class="pill bad">{_esc(state)}</span>'
            )
            rows.append([
                entry.get("shard", "—"), pill, entry.get("opens", 0),
                entry.get("failures", 0), entry.get("successes", 0),
            ])
            classes.append("ok" if state == "closed" else "firing")
        parts.append(_table(
            ["shard", "breaker", "opens", "failures", "successes"],
            rows, row_classes=classes,
        ))
    return "".join(parts)


def _shadow_section(shadow: Any) -> str:
    stats = shadow.stats()
    rows = [[key, _fmt(value) if value is not None else "—"] for key, value in stats.items()]
    return "<h2>Shadow-sampled live recall</h2>" + _table(["key", "value"], rows)


def _span_tree(record: Mapping[str, Any]) -> str:
    spans = record.get("spans", [])
    children: Dict[Optional[int], List[Mapping[str, Any]]] = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(span)
    total_ms = max(float(record.get("duration_ms") or 0.0), 1e-9)

    def render(span: Mapping[str, Any]) -> str:
        duration = span.get("duration_ms")
        dur_txt = "—" if duration is None else f"{duration:.2f} ms"
        bar = _bar((duration or 0.0) / total_ms, width_px=120)
        attrs = span.get("attrs") or {}
        attr_txt = " ".join(f"{k}={_plain(v)}" for k, v in attrs.items())
        kids = children.get(span["id"], [])
        label = (f"<summary>{_esc(span['name'])} <span class='dur'>{dur_txt}</span> {bar} "
                 f"<span class='attrs'>{_esc(attr_txt)}</span></summary>")
        if not kids:
            return f"<details open>{label}</details>"
        return f"<details open>{label}{''.join(render(kid) for kid in kids)}</details>"

    roots = children.get(None, [])
    trace_attrs = " ".join(f"{k}={_plain(v)}" for k, v in (record.get("attrs") or {}).items())
    head = (f"<summary><b>{_esc(record.get('name', 'trace'))}</b> "
            f"#{_esc(record.get('trace_id'))} — {float(record.get('duration_ms') or 0):.2f} ms "
            f"<span class='attrs'>{_esc(trace_attrs)}</span></summary>")
    return f"<details class='trace' open>{head}{''.join(render(root) for root in roots)}</details>"


def _traces_section(traces: Sequence[Mapping[str, Any]], limit: int = 5) -> str:
    shown = list(traces)[-limit:]
    parts = [f"<h2>Sampled traces ({len(shown)} of {len(list(traces))} retained)</h2>"]
    parts.extend(_span_tree(record) for record in shown)
    return "".join(parts)


def render_dashboard(
    title: str = "repro fleet",
    summary: Optional[Mapping[str, Any]] = None,
    registry: Optional[MetricsRegistry] = None,
    slo: Optional[SloTracker] = None,
    events: Optional[EventLog] = None,
    drift: Optional[Any] = None,
    alerts: Optional[Any] = None,
    shadow: Optional[Any] = None,
    traces: Optional[Sequence[Mapping[str, Any]]] = None,
    generated_at: Optional[str] = None,
    breakers: Optional[Sequence[Mapping[str, Any]]] = None,
    tiers: Optional[Mapping[str, int]] = None,
) -> str:
    """Render every supplied telemetry object into one HTML document.

    All panels are optional; omitted ones simply do not render.  ``traces``
    takes JSON trace records (``Trace.to_dict()`` form — e.g. a
    :class:`~repro.obs.trace.Tracer`'s ``finished`` ring).  ``breakers``
    takes per-shard circuit-breaker status rows (``ShardedCluster.
    breaker_status()``) and ``tiers`` the degradation-tier response counts;
    together they render the resilience panel.
    """
    sections: List[str] = []
    if summary:
        sections.append(_summary_section(summary))
    if alerts is not None:
        sections.append(_alerts_section(alerts))
    if breakers or tiers:
        sections.append(_resilience_section(breakers, tiers))
    if drift is not None:
        sections.append(_drift_section(drift))
    if shadow is not None:
        sections.append(_shadow_section(shadow))
    if slo is not None:
        sections.append(_slo_section(slo))
    if registry is not None and len(registry):
        sections.append(_registry_section(registry))
    if events is not None and (len(events) or events.recorded):
        sections.append(_events_section(events))
    if traces:
        sections.append(_traces_section(traces))
    stamp = f"<footer>generated {_esc(generated_at)}</footer>" if generated_at else "<footer></footer>"
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_STYLE}</style></head>"
        f"<body><h1>{_esc(title)}</h1>{''.join(sections)}{stamp}</body></html>"
    )


def write_dashboard(path: str, **kwargs: Any) -> str:
    """Render and write the dashboard; returns the path for chaining."""
    document = render_dashboard(**kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(document)
    return str(path)
