"""Request tracing: nested spans through the serving pipeline.

A trace follows one query end to end — ``submit → queue-wait → gate →
retrieve [ivf-probe / prefilter / prune] → rank [per-plan-step] → flush`` —
so latency can be attributed to a *stage*, not just observed at the edge.
The design constraints come from the serving hot path:

* **head-based sampling**: the keep/drop decision is made once, at
  :meth:`Tracer.trace` time, so an unsampled request pays one RNG draw and
  nothing else;
* **near-zero-cost when disabled**: unsampled requests receive the shared
  :data:`NULL_TRACE` singleton whose every method is a no-op — components
  instrument unconditionally and never branch on "is tracing on?"
  (``benchmarks/test_serving_throughput.py`` guards the overhead at < 5%);
* **externally timed spans**: micro-batched work (the flush's gate
  resolution and ranking forward) is shared by many queries; the batcher
  times it once and attaches the interval to every sampled trace via
  :meth:`Trace.record_span` instead of re-measuring per query.

Finished traces are exported as JSONL — one JSON object per trace per line,
spans carrying integer ids/parents and start offsets in milliseconds
relative to the trace start — a format log pipelines and the CI artifacts
ingest directly.
"""

from __future__ import annotations

import json
import os
import random
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACE",
    "NULL_TRACER",
    "JsonlTraceExporter",
    "InMemoryExporter",
    "kernel_span_hook",
]


class Span:
    """One timed stage inside a trace (usable as a context manager)."""

    __slots__ = ("_trace", "span_id", "parent_id", "name", "start_time", "end_time", "attrs")

    sampled = True

    def __init__(
        self,
        trace: "Trace",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_time: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs or {}

    def set(self, **attrs: Any) -> "Span":
        """Attach key/value attributes (e.g. ``cache_hit=True``)."""
        self.attrs.update(attrs)
        return self

    def end(self) -> None:
        """Close the span (idempotent)."""
        if self.end_time is None:
            self.end_time = self._trace._clock()
            self._trace._close(self)

    @property
    def duration_ms(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return (self.end_time - self.start_time) * 1000.0

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.end()
        return False

    def __repr__(self) -> str:
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _NullSpan:
    """Shared do-nothing span handed out by unsampled traces."""

    __slots__ = ()
    sampled = False
    span_id = None
    parent_id = None
    name = ""
    attrs: Dict[str, Any] = {}
    duration_ms = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Trace:
    """One sampled request's span tree.

    Spans opened with :meth:`span` nest under the innermost open span;
    :meth:`begin` is the same operation under a name that reads better when
    the caller keeps the handle and ends it later (the batcher's queue-wait
    span stays open from submit until the flush).  :meth:`finish` closes any
    stragglers and hands the trace to the tracer's exporter.
    """

    __slots__ = (
        "tracer",
        "trace_id",
        "name",
        "attrs",
        "start_time",
        "end_time",
        "spans",
        "_stack",
        "_clock",
    )

    sampled = True

    def __init__(self, tracer: "Tracer", trace_id: int, name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.name = name
        self.attrs = attrs
        self._clock = tracer._clock
        self.start_time = self._clock()
        self.end_time: Optional[float] = None
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span nested under the innermost open span."""
        parent = self._stack[-1].span_id if self._stack else None
        handle = Span(self, len(self.spans), parent, name, self._clock(), attrs or None)
        self.spans.append(handle)
        self._stack.append(handle)
        return handle

    #: Alias for spans the caller ends manually instead of via ``with``.
    begin = span

    def _close(self, span: Span) -> None:
        try:
            self._stack.remove(span)
        except ValueError:  # already closed out of order — harmless
            pass

    def record_span(
        self,
        name: str,
        start_time: float,
        end_time: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Attach an externally timed interval (shared micro-batched work)."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        handle = Span(self, len(self.spans), parent_id, name, start_time, attrs or None)
        handle.end_time = end_time
        self.spans.append(handle)
        return handle

    def set(self, **attrs: Any) -> "Trace":
        self.attrs.update(attrs)
        return self

    def finish(self, **attrs: Any) -> None:
        """Close every open span, stamp the end time, export (idempotent)."""
        if self.end_time is not None:
            return
        for span in reversed(self.spans):
            if span.end_time is None:
                span.end()
        self.attrs.update(attrs)
        self.end_time = self._clock()
        self.tracer._export(self)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record; span times are ms offsets from the trace start."""
        origin = self.start_time
        end = self.end_time if self.end_time is not None else self._clock()
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "duration_ms": (end - origin) * 1000.0,
            "attrs": self.attrs,
            "spans": [
                {
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "start_ms": (span.start_time - origin) * 1000.0,
                    "duration_ms": span.duration_ms,
                    "attrs": span.attrs,
                }
                for span in self.spans
            ],
        }


class _NullTrace:
    """Shared do-nothing trace handed to unsampled requests."""

    __slots__ = ()
    sampled = False
    trace_id = None
    name = ""
    attrs: Dict[str, Any] = {}
    spans: List[Span] = []

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    begin = span

    def record_span(self, name, start_time, end_time, parent=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def set(self, **attrs: Any) -> "_NullTrace":
        return self

    def finish(self, **attrs: Any) -> None:
        pass


NULL_TRACE = _NullTrace()


def kernel_span_hook(trace: Any, parent: Any) -> Optional[Callable]:
    """A ``(PlanStep, seconds)`` hook attaching per-kernel child spans.

    Built for :meth:`repro.infer.plan.InferencePlan.run`'s ``step_hook``:
    after each fused kernel executes, a child span under ``parent`` records
    its name, op kind, per-row FLOPs, and measured interval.  Returns
    ``None`` for unsampled traces, which keeps the plan on its unconditional
    fast loop — the hook exists only for requests actually being traced.
    """
    if not trace.sampled:
        return None

    def hook(step: Any, seconds: float, _trace=trace, _parent=parent) -> None:
        now = _trace._clock()
        _trace.record_span(
            step.name, now - seconds, now, parent=_parent, kind=step.kind, flops=step.flops
        )

    return hook


class JsonlTraceExporter:
    """Append finished traces to a JSONL file, one trace per line.

    Growth is bounded: with ``max_bytes`` set, the active file rotates once
    the next record would push it past the cap — ``path`` is renamed to
    ``path.1`` (existing rotations shift to ``path.2`` … ``path.keep``, the
    oldest dropped) and a fresh file is opened.  A long traced run then
    holds at most ``(keep + 1) * max_bytes`` on disk instead of appending
    forever.  A single record larger than ``max_bytes`` still writes whole
    (into its own file) — records are never split or silently dropped.
    """

    def __init__(self, path: str, max_bytes: Optional[int] = None, keep: int = 3) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.path = str(path)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.keep = int(keep)
        self.traces_written = 0
        self.rotations = 0
        self.bytes_written = 0  # in the currently active file
        self._fh = None

    def export(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        nbytes = len(line.encode("utf-8"))
        if self._fh is None:
            self._fh = open(self.path, "w", encoding="utf-8")
            self.bytes_written = 0
        if (
            self.max_bytes is not None
            and self.bytes_written > 0
            and self.bytes_written + nbytes > self.max_bytes
        ):
            self._rotate()
        self._fh.write(line)
        self.bytes_written += nbytes
        self.traces_written += 1

    def _rotate(self) -> None:
        self._fh.close()
        for index in range(self.keep - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._fh = open(self.path, "w", encoding="utf-8")
        self.bytes_written = 0
        self.rotations += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceExporter":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


class InMemoryExporter:
    """Collects finished trace records in a list (tests and examples)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def export(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class Tracer:
    """Head-sampling trace factory shared by a serving fleet.

    Parameters
    ----------
    sample_rate:
        Probability that a request is traced (``1.0`` = every request,
        ``0.0`` = none).  The decision is made once per request at
        :meth:`trace` time — an unsampled request gets :data:`NULL_TRACE`
        and pays nothing further.
    exporter:
        Optional object with ``export(record: dict)`` (e.g.
        :class:`JsonlTraceExporter`); finished traces are also kept in the
        bounded :attr:`finished` ring regardless, so examples and tests can
        inspect recent traces without an exporter.
    clock:
        Time source in seconds (defaults to ``time.perf_counter``); tests
        pass a :class:`~repro.serving.metrics.ManualClock`.
    seed:
        Seeds the sampling RNG, making traced replays deterministic.
    """

    enabled = True

    def __init__(
        self,
        sample_rate: float = 1.0,
        exporter: Optional[Any] = None,
        clock: Callable[[], float] = time.perf_counter,
        seed: int = 0,
        keep_last: int = 64,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = float(sample_rate)
        self.exporter = exporter
        self._clock = clock
        self._rng = random.Random(seed)
        self.finished: Deque[Dict[str, Any]] = deque(maxlen=keep_last)
        self.started = 0
        self.sampled = 0
        self.exported = 0

    def trace(self, name: str, **attrs: Any) -> Any:
        """A new :class:`Trace` when sampled, :data:`NULL_TRACE` otherwise."""
        self.started += 1
        if self.sample_rate <= 0.0:
            return NULL_TRACE
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            return NULL_TRACE
        self.sampled += 1
        return Trace(self, self.sampled, name, dict(attrs))

    def _export(self, trace: Trace) -> None:
        record = trace.to_dict()
        self.finished.append(record)
        if self.exporter is not None:
            self.exporter.export(record)
            self.exported += 1

    def stats(self) -> Dict[str, Any]:
        return {
            "enabled": True,
            "sample_rate": self.sample_rate,
            "started": self.started,
            "sampled": self.sampled,
            "exported": self.exported,
        }

    def close(self) -> None:
        if self.exporter is not None and hasattr(self.exporter, "close"):
            self.exporter.close()


class NullTracer:
    """The disabled tracer: every request gets :data:`NULL_TRACE`.

    Components default to this singleton when no tracer is supplied, so the
    instrumented code path is identical with tracing on or off — only the
    objects it calls into change.
    """

    enabled = False
    sample_rate = 0.0
    started = 0
    sampled = 0
    exported = 0

    def trace(self, name: str, **attrs: Any) -> _NullTrace:
        return NULL_TRACE

    def stats(self) -> Dict[str, Any]:
        return {"enabled": False, "sample_rate": 0.0, "started": 0, "sampled": 0, "exported": 0}

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()
