"""Drift monitors: streaming PSI/KS between training-time and live traffic.

The online loop's silent failure mode is *distribution drift*: the world
moves (user interests rotate, category trends flip) while the production
model keeps serving what it learned from a stale window.  Ranking metrics at
canary time cannot see this — the canary replays *logged* traffic, which is
by construction the distribution the candidate trained on.  What catches it
is comparing a **reference sketch** of the click-log window the production
model was trained on against a **live sketch** of the traffic it is serving
right now.

Both sides are :class:`~repro.obs.streaming.StreamingHistogram`\\ s, so the
whole monitor inherits the streaming-metrics contract: O(1) memory per
feature, and per-shard live sketches fold associatively (``merge``) into one
fleet view — the property ROADMAP item 1's multi-process fleet needs.

Two scores per feature, both computed from the shared exponential bucket
layout:

* **PSI** (population stability index): ``sum((p_i - q_i) * ln(p_i / q_i))``
  over buckets, the standard industry drift score.  Symmetric, zero iff the
  bucketed distributions are identical.  The conventional reading: < 0.1
  stationary, 0.1–0.25 moderate shift, > 0.25 act.
* **KS** (Kolmogorov–Smirnov statistic): the max absolute CDF gap, in
  ``[0, 1]``.  Less sensitive to tail buckets than PSI, so the pair
  disambiguates "mass moved" from "tails got fatter".

Like everything in :mod:`repro.obs` this imports nothing from the serving
stack; the online loop feeds it per-session features (CTR, predicted
scores, score-calibration gap, item price/popularity) and freezes the
reference at promotion time.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.obs.streaming import StreamingHistogram

__all__ = [
    "psi_from_counts",
    "ks_from_counts",
    "population_stability_index",
    "ks_statistic",
    "DriftMonitor",
]

#: Probability floor for empty buckets: PSI's ``ln(p/q)`` diverges when one
#: side of a populated bucket is empty, so both sides are clamped here.
_PSI_EPSILON = 1e-6


def psi_from_counts(
    reference_counts: np.ndarray,
    live_counts: np.ndarray,
    epsilon: float = _PSI_EPSILON,
) -> float:
    """Population stability index between two aligned count vectors.

    Only buckets populated on at least one side participate (summing over
    thousands of mutually empty buckets would inject ``epsilon`` noise);
    within those, each side's probability is clamped at ``epsilon`` so a
    bucket that gained or lost all its mass contributes a large-but-finite
    term.  Returns exactly ``0.0`` when the normalized counts coincide.
    """
    reference_counts = np.asarray(reference_counts, dtype=np.float64)
    live_counts = np.asarray(live_counts, dtype=np.float64)
    if reference_counts.shape != live_counts.shape:
        raise ValueError(
            f"count vectors must align, got {reference_counts.shape} vs {live_counts.shape}"
        )
    ref_total = float(reference_counts.sum())
    live_total = float(live_counts.sum())
    if ref_total <= 0 or live_total <= 0:
        return 0.0
    mask = (reference_counts > 0) | (live_counts > 0)
    p = np.maximum(reference_counts[mask] / ref_total, epsilon)
    q = np.maximum(live_counts[mask] / live_total, epsilon)
    return float(np.sum((p - q) * np.log(p / q)))


def ks_from_counts(reference_counts: np.ndarray, live_counts: np.ndarray) -> float:
    """Kolmogorov–Smirnov statistic (max CDF gap) between aligned counts."""
    reference_counts = np.asarray(reference_counts, dtype=np.float64)
    live_counts = np.asarray(live_counts, dtype=np.float64)
    if reference_counts.shape != live_counts.shape:
        raise ValueError(
            f"count vectors must align, got {reference_counts.shape} vs {live_counts.shape}"
        )
    ref_total = float(reference_counts.sum())
    live_total = float(live_counts.sum())
    if ref_total <= 0 or live_total <= 0:
        return 0.0
    gap = np.cumsum(reference_counts) / ref_total - np.cumsum(live_counts) / live_total
    return float(np.max(np.abs(gap)))


def _require_same_layout(a: StreamingHistogram, b: StreamingHistogram) -> None:
    if (a.min_value, a.growth, a.num_buckets) != (b.min_value, b.growth, b.num_buckets):
        raise ValueError("drift scores require identical bucket layouts")


def population_stability_index(
    reference: StreamingHistogram, live: StreamingHistogram
) -> float:
    """PSI between two histograms sharing a bucket layout."""
    _require_same_layout(reference, live)
    return psi_from_counts(reference.counts, live.counts)


def ks_statistic(reference: StreamingHistogram, live: StreamingHistogram) -> float:
    """KS statistic between two histograms sharing a bucket layout."""
    _require_same_layout(reference, live)
    return ks_from_counts(reference.counts, live.counts)


class DriftMonitor:
    """Named reference/live sketch pairs with streaming drift scores.

    Lifecycle::

        monitor.observe("ctr", session_ctr)      # every served session
        monitor.freeze_reference()               # at promotion: live → reference
        monitor.observe("ctr", session_ctr)      # next window accumulates fresh
        monitor.scores()["ctr"]["psi"]           # live window vs training window

    ``freeze_reference`` is called when a candidate is promoted: the live
    sketches at that moment cover exactly the click-log window the candidate
    trained on, so they *are* the training-time reference for the new
    production model.  Until the first freeze every score is ``0.0`` — there
    is nothing to drift from.

    Sketches are created lazily per feature name with one shared bucket
    layout.  The default is deliberately **coarse** — ~11 buckets across
    ``[0, 1]``, matching the decile binning PSI's conventional thresholds
    (0.1 / 0.25) were calibrated on; finer buckets inflate the score with
    per-bucket sampling noise on realistic window sizes.  Negative
    observations
    clamp to ``0.0`` — drift features are rates and means, where a tiny
    negative is numerical noise, not a histogram-contract violation.

    Per-shard monitors fold with :meth:`merge` (live sketches add bucket-
    wise; a shared reference passes through), and :meth:`worker_view` hands
    a shard its own empty live sketches over the same frozen reference.
    """

    def __init__(
        self,
        features: Sequence[str] = (),
        min_value: float = 5e-2,
        growth: float = 1.35,
        num_buckets: int = 32,
        min_samples: int = 20,
    ) -> None:
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.min_value = float(min_value)
        self.growth = float(growth)
        self.num_buckets = int(num_buckets)
        self.min_samples = int(min_samples)
        self._live: Dict[str, StreamingHistogram] = {}
        self._reference: Dict[str, StreamingHistogram] = {}
        self.reference_samples = 0
        self.freezes = 0
        for name in features:
            self._live[name] = self._new_sketch(name)

    def _new_sketch(self, name: str) -> StreamingHistogram:
        return StreamingHistogram(
            name,
            min_value=self.min_value,
            growth=self.growth,
            num_buckets=self.num_buckets,
        )

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one live-traffic observation of feature ``name``."""
        sketch = self._live.get(name)
        if sketch is None:
            sketch = self._live[name] = self._new_sketch(name)
        sketch.record(max(float(value), 0.0))

    def observe_many(self, name: str, values: Iterable[float]) -> None:
        for value in values:
            self.observe(name, value)

    # ------------------------------------------------------------------
    # reference lifecycle
    # ------------------------------------------------------------------
    @property
    def has_reference(self) -> bool:
        return bool(self._reference)

    def features(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self._live) | set(self._reference)))

    def freeze_reference(self) -> None:
        """Promote the live sketches to the reference; start a fresh window.

        Call at model-promotion time: the live window at that moment is the
        click-log window the newly promoted model trained on.
        """
        if not self._live:
            raise RuntimeError("no live observations to freeze as a reference")
        self._reference = self._live
        self.reference_samples = sum(sketch.count for sketch in self._reference.values())
        self.freezes += 1
        self._live = {name: self._new_sketch(name) for name in self._reference}

    def reset_live(self) -> None:
        """Drop the live window (e.g. after scoring a completed cycle)."""
        self._live = {name: self._new_sketch(name) for name in self._live}

    def live_samples(self, name: str) -> int:
        sketch = self._live.get(name)
        return 0 if sketch is None else sketch.count

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def _scoreable(self, name: str) -> Optional[Tuple[StreamingHistogram, StreamingHistogram]]:
        reference = self._reference.get(name)
        live = self._live.get(name)
        if reference is None or live is None:
            return None
        if reference.count < self.min_samples or live.count < self.min_samples:
            return None
        return reference, live

    def psi(self, name: str) -> float:
        """PSI of ``name``'s live window vs its reference (0.0 if unscored)."""
        pair = self._scoreable(name)
        if pair is None:
            return 0.0
        return population_stability_index(*pair)

    def ks(self, name: str) -> float:
        """KS statistic of ``name``'s live window vs its reference."""
        pair = self._scoreable(name)
        if pair is None:
            return 0.0
        return ks_statistic(*pair)

    def scores(self) -> Dict[str, Dict[str, float]]:
        """Per-feature ``{psi, ks, live_samples, reference_samples}``."""
        result: Dict[str, Dict[str, float]] = {}
        for name in self.features():
            reference = self._reference.get(name)
            live = self._live.get(name)
            result[name] = {
                "psi": self.psi(name),
                "ks": self.ks(name),
                "live_samples": 0 if live is None else live.count,
                "reference_samples": 0 if reference is None else reference.count,
            }
        return result

    def worst(self) -> Tuple[Optional[str], float]:
        """The feature with the highest PSI and its score."""
        worst_name: Optional[str] = None
        worst_psi = 0.0
        for name in self.features():
            score = self.psi(name)
            if worst_name is None or score > worst_psi:
                worst_name, worst_psi = name, score
        return worst_name, worst_psi

    # ------------------------------------------------------------------
    # fleet plumbing
    # ------------------------------------------------------------------
    def worker_view(self) -> "DriftMonitor":
        """A per-shard monitor: same frozen reference, empty live sketches."""
        view = DriftMonitor(
            min_value=self.min_value,
            growth=self.growth,
            num_buckets=self.num_buckets,
            min_samples=self.min_samples,
        )
        view._reference = self._reference  # shared immutable snapshot
        view.reference_samples = self.reference_samples
        view._live = {name: view._new_sketch(name) for name in self._reference}
        return view

    def merge(self, other: "DriftMonitor") -> "DriftMonitor":
        """Associative fold of per-shard monitors into one fleet view.

        Live sketches add bucket-wise.  References pass through unless both
        sides hold distinct ones, in which case they add too — PSI and KS
        are computed from normalized counts, so merging identical reference
        sketches (the shared-snapshot case) leaves every score unchanged.
        """
        if (self.min_value, self.growth, self.num_buckets) != (
            other.min_value,
            other.growth,
            other.num_buckets,
        ):
            raise ValueError("cannot merge drift monitors with different bucket layouts")
        merged = DriftMonitor(
            min_value=self.min_value,
            growth=self.growth,
            num_buckets=self.num_buckets,
            min_samples=min(self.min_samples, other.min_samples),
        )
        for name in set(self._live) | set(other._live):
            mine = self._live.get(name)
            theirs = other._live.get(name)
            if mine is not None and theirs is not None:
                merged._live[name] = mine.merge(theirs)
            else:
                source = mine if mine is not None else theirs
                merged._live[name] = source.merge(merged._new_sketch(name))
        if self._reference is other._reference:
            merged._reference = self._reference
            merged.reference_samples = self.reference_samples
        else:
            for name in set(self._reference) | set(other._reference):
                mine = self._reference.get(name)
                theirs = other._reference.get(name)
                if mine is not None and theirs is not None:
                    merged._reference[name] = mine.merge(theirs)
                else:
                    source = mine if mine is not None else theirs
                    merged._reference[name] = source.merge(merged._new_sketch(name))
            merged.reference_samples = sum(
                sketch.count for sketch in merged._reference.values()
            )
        merged.freezes = max(self.freezes, other.freezes)
        return merged

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (dashboard / benchmark artifacts)."""
        worst_name, worst_psi = self.worst()
        return {
            "has_reference": self.has_reference,
            "freezes": self.freezes,
            "reference_samples": self.reference_samples,
            "worst_feature": worst_name,
            "worst_psi": worst_psi,
            "features": self.scores(),
        }
