"""Per-kernel profiling for compiled inference plans.

A :class:`PlanProfiler` attaches to one or more
:class:`~repro.infer.plan.InferencePlan` instances (via
``CompiledModel.attach_profiler`` or by assigning ``plan.profiler``) and
times every fused kernel step of every execution, aggregating:

* wall time and call count per step;
* rows processed (the leading dimensions of the step's output);
* estimated FLOPs, from the per-row multiply-accumulate count the compiler
  stamps on each :class:`~repro.infer.plan.PlanStep` out of the §III-F cost
  model (``repro.serving.cost.mlp_flops`` arithmetic over the packed
  weight shapes).

``report()`` returns rows suitable for JSON; ``report_table()`` renders the
(step, op, shape, calls, total ms, % of plan) table the benchmarks print.
Profiling is opt-in: a plan with no profiler attached executes its original
unconditional loop (the overhead benchmark guards that path).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.utils.tables import format_table

__all__ = ["PlanProfiler"]


class _StepStat:
    __slots__ = ("plan", "step", "kind", "calls", "seconds", "rows", "flops", "shape")

    def __init__(self, plan: str, step: str, kind: str) -> None:
        self.plan = plan
        self.step = step
        self.kind = kind
        self.calls = 0
        self.seconds = 0.0
        self.rows = 0
        self.flops = 0
        self.shape: Optional[Tuple[int, ...]] = None


def _output_shape(step, ctx: dict) -> Optional[Tuple[int, ...]]:
    if not step.writes:
        return None
    out = ctx.get(step.writes[0])
    shape = getattr(out, "shape", None)
    return tuple(int(dim) for dim in shape) if shape is not None else None


def _leading_rows(shape: Optional[Tuple[int, ...]]) -> int:
    """Rows a step processed: the product of all but the feature axis."""
    if not shape:
        return 0
    if len(shape) == 1:
        return shape[0]
    rows = 1
    for dim in shape[:-1]:
        rows *= dim
    return rows


class PlanProfiler:
    """Accumulates per-(plan, step) timing, rows, and FLOP estimates."""

    def __init__(self) -> None:
        self._stats: Dict[Tuple[str, str], _StepStat] = {}

    def record_step(self, plan_name: str, step, seconds: float, ctx: dict) -> None:
        """Called by :meth:`InferencePlan.run` after each step executes."""
        key = (plan_name, step.name)
        stat = self._stats.get(key)
        if stat is None:
            stat = _StepStat(plan_name, step.name, step.kind)
            self._stats[key] = stat
        shape = _output_shape(step, ctx)
        rows = _leading_rows(shape)
        stat.calls += 1
        stat.seconds += seconds
        stat.rows += rows
        stat.flops += rows * getattr(step, "flops", 0)
        stat.shape = shape

    def reset(self) -> None:
        self._stats.clear()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def plans(self) -> List[str]:
        seen: List[str] = []
        for plan, _ in self._stats:
            if plan not in seen:
                seen.append(plan)
        return seen

    def total_seconds(self, plan: Optional[str] = None) -> float:
        return sum(
            stat.seconds for stat in self._stats.values() if plan is None or stat.plan == plan
        )

    def report(self, plan: Optional[str] = None) -> List[Dict[str, Any]]:
        """Per-step rows (insertion = execution order), JSON-ready.

        ``share`` is each step's fraction of its **own plan's** total time,
        so shares sum to 1 per plan even in a multi-plan report.
        """
        totals = {name: self.total_seconds(name) for name in self.plans()}
        rows: List[Dict[str, Any]] = []
        for stat in self._stats.values():
            if plan is not None and stat.plan != plan:
                continue
            total = totals[stat.plan]
            rows.append(
                {
                    "plan": stat.plan,
                    "step": stat.step,
                    "op": stat.kind,
                    "shape": list(stat.shape) if stat.shape else None,
                    "calls": stat.calls,
                    "rows": stat.rows,
                    "total_ms": stat.seconds * 1000.0,
                    "share": stat.seconds / total if total > 0 else 0.0,
                    "mflops": stat.flops / 1e6,
                }
            )
        return rows

    def shares(self, plan: Optional[str] = None) -> Dict[str, float]:
        """``{step name: fraction of plan time}`` — the regression-gate view."""
        return {row["step"]: row["share"] for row in self.report(plan)}

    def report_table(self, plan: Optional[str] = None, title: Optional[str] = None) -> str:
        """The (step, op, shape, calls, total ms, % of plan) ASCII table."""
        rows = self.report(plan)
        if not rows:
            return "PlanProfiler: no steps recorded"
        table_rows = [
            [
                f"{row['plan']}.{row['step']}" if plan is None else row["step"],
                row["op"],
                "x".join(str(dim) for dim in row["shape"]) if row["shape"] else "-",
                row["calls"],
                f"{row['total_ms']:.3f}",
                f"{row['share'] * 100.0:5.1f}%",
                f"{row['mflops']:.2f}",
            ]
            for row in rows
        ]
        return format_table(
            ["step", "op", "shape", "calls", "total ms", "% plan", "MFLOP"],
            table_rows,
            title=title,
        )
