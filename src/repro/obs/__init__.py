"""``repro.obs`` — fleet observability: tracing, streaming telemetry, SLOs.

The serving stack (§III-F) spans five subsystems — micro-batcher, session
cache, retrieval cascade, compiled inference plan, online loop — and this
package is the instrument layer threaded through all of them:

* :mod:`~repro.obs.trace` — request tracing with nested spans
  (``submit → queue-wait → gate → retrieve → rank → flush``), head-based
  sampling, and a JSONL exporter; disabled tracing is a shared no-op
  singleton, so the hot path never branches on "is tracing on?";
* :mod:`~repro.obs.streaming` — counters, gauges, and fixed-size
  exponential-bucket histograms (quantile error ≤ 2%, O(1) memory) that
  replace the unbounded per-query lists, mergeable across shards and
  exportable as Prometheus text or JSON;
* :mod:`~repro.obs.events` — typed control-plane events (hot swaps, canary
  verdicts, recall probes, click-log lag) in a bounded ring buffer;
* :mod:`~repro.obs.slo` — sliding-window p99 and error-budget burn rate;
* :mod:`~repro.obs.profiler` — per-kernel timing + FLOP attribution for
  compiled :class:`~repro.infer.plan.InferencePlan` executions;
* :mod:`~repro.obs.drift` — streaming PSI/KS between a training-time
  reference sketch and live-traffic sketches (mergeable across shards);
* :mod:`~repro.obs.recall` — head-sampled live retrieval recall@k, the
  online counterpart of the build-time :class:`~repro.retrieval.RetrievalProbe`;
* :mod:`~repro.obs.alerts` — declarative :class:`AlertRule` predicates over
  the telemetry snapshot, evaluated with hysteresis into typed events;
* :mod:`~repro.obs.dashboard` — the whole telemetry surface rendered into
  one self-contained HTML file.

Everything here is numpy-and-stdlib only and imports nothing from the
serving stack — serving imports obs, never the reverse.
"""

from repro.obs.alerts import AlertManager, AlertRule, AlertTransition, telemetry_snapshot
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.drift import (
    DriftMonitor,
    ks_from_counts,
    ks_statistic,
    population_stability_index,
    psi_from_counts,
)
from repro.obs.events import EVENT_KINDS, Event, EventLog
from repro.obs.profiler import PlanProfiler
from repro.obs.recall import ShadowRecallMonitor
from repro.obs.slo import SloTracker
from repro.obs.streaming import Counter, Gauge, MetricsRegistry, StreamingHistogram
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACE,
    NULL_TRACER,
    InMemoryExporter,
    JsonlTraceExporter,
    NullTracer,
    Span,
    Trace,
    Tracer,
    kernel_span_hook,
)

__all__ = [
    "AlertManager",
    "AlertRule",
    "AlertTransition",
    "telemetry_snapshot",
    "render_dashboard",
    "write_dashboard",
    "DriftMonitor",
    "ShadowRecallMonitor",
    "psi_from_counts",
    "ks_from_counts",
    "population_stability_index",
    "ks_statistic",
    "EVENT_KINDS",
    "Event",
    "EventLog",
    "PlanProfiler",
    "SloTracker",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "StreamingHistogram",
    "NULL_SPAN",
    "NULL_TRACE",
    "NULL_TRACER",
    "InMemoryExporter",
    "JsonlTraceExporter",
    "NullTracer",
    "Span",
    "Trace",
    "Tracer",
    "kernel_span_hook",
]
