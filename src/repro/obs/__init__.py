"""``repro.obs`` — fleet observability: tracing, streaming telemetry, SLOs.

The serving stack (§III-F) spans five subsystems — micro-batcher, session
cache, retrieval cascade, compiled inference plan, online loop — and this
package is the instrument layer threaded through all of them:

* :mod:`~repro.obs.trace` — request tracing with nested spans
  (``submit → queue-wait → gate → retrieve → rank → flush``), head-based
  sampling, and a JSONL exporter; disabled tracing is a shared no-op
  singleton, so the hot path never branches on "is tracing on?";
* :mod:`~repro.obs.streaming` — counters, gauges, and fixed-size
  exponential-bucket histograms (quantile error ≤ 2%, O(1) memory) that
  replace the unbounded per-query lists, mergeable across shards and
  exportable as Prometheus text or JSON;
* :mod:`~repro.obs.events` — typed control-plane events (hot swaps, canary
  verdicts, recall probes, click-log lag) in a bounded ring buffer;
* :mod:`~repro.obs.slo` — sliding-window p99 and error-budget burn rate;
* :mod:`~repro.obs.profiler` — per-kernel timing + FLOP attribution for
  compiled :class:`~repro.infer.plan.InferencePlan` executions.

Everything here is numpy-and-stdlib only and imports nothing from the
serving stack — serving imports obs, never the reverse.
"""

from repro.obs.events import EVENT_KINDS, Event, EventLog
from repro.obs.profiler import PlanProfiler
from repro.obs.slo import SloTracker
from repro.obs.streaming import Counter, Gauge, MetricsRegistry, StreamingHistogram
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACE,
    NULL_TRACER,
    InMemoryExporter,
    JsonlTraceExporter,
    NullTracer,
    Span,
    Trace,
    Tracer,
    kernel_span_hook,
)

__all__ = [
    "EVENT_KINDS",
    "Event",
    "EventLog",
    "PlanProfiler",
    "SloTracker",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "StreamingHistogram",
    "NULL_SPAN",
    "NULL_TRACE",
    "NULL_TRACER",
    "InMemoryExporter",
    "JsonlTraceExporter",
    "NullTracer",
    "Span",
    "Trace",
    "Tracer",
    "kernel_span_hook",
]
