"""SLO tracking: sliding-window tail latency and error-budget burn rate.

An SLO ("p99 under X ms, 99.9% of requests") is only meaningful over a
window — lifetime aggregates hide a fleet that was healthy all week and on
fire for the last minute.  :class:`SloTracker` keeps ``num_buckets``
rotating sub-windows, each a bounded
:class:`~repro.obs.streaming.StreamingHistogram` plus violation counters;
queries merge the live sub-windows, so p99 and the burn rate always reflect
the last ``window_seconds`` at O(1) memory.

**Burn rate** is the standard SRE quantity: observed violation rate divided
by the allowed rate (``1 - availability_target``).  1.0 means the error
budget is being spent exactly as provisioned; 10 means ten times too fast.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.streaming import StreamingHistogram

__all__ = ["SloTracker"]


class _Window:
    """One rotating sub-window of the sliding SLO window."""

    __slots__ = ("histogram", "total", "violations")

    def __init__(self, histogram: StreamingHistogram) -> None:
        self.histogram = histogram
        self.total = 0
        self.violations = 0


class SloTracker:
    """Sliding-window latency-SLO evaluation.

    Parameters
    ----------
    latency_slo_ms:
        The per-request latency objective; a request above it (or flagged
        ``error=True``) spends error budget.
    availability_target:
        Fraction of requests allowed to meet the SLO, e.g. ``0.999``.
    window_seconds:
        Length of the sliding evaluation window.
    num_buckets:
        Sub-window count: rotation granularity is ``window / num_buckets``.
    """

    def __init__(
        self,
        latency_slo_ms: float,
        availability_target: float = 0.999,
        window_seconds: float = 60.0,
        num_buckets: int = 12,
    ) -> None:
        if latency_slo_ms <= 0:
            raise ValueError(f"latency_slo_ms must be > 0, got {latency_slo_ms}")
        if not 0.0 < availability_target < 1.0:
            raise ValueError(
                f"availability_target must be in (0, 1), got {availability_target}"
            )
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got {window_seconds}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.latency_slo_ms = float(latency_slo_ms)
        self.availability_target = float(availability_target)
        self.window_seconds = float(window_seconds)
        self.num_buckets = int(num_buckets)
        self._span = self.window_seconds / self.num_buckets
        self._windows: Dict[int, _Window] = {}
        self._last_now = 0.0
        self.total_recorded = 0
        self.total_violations = 0

    def _new_histogram(self) -> StreamingHistogram:
        # 512 buckets at growth 1.04 cover 1e-3 ms .. ~5e5 ms — any latency
        # a request-serving path can plausibly produce.
        return StreamingHistogram(min_value=1e-3, growth=1.04, num_buckets=512)

    def _epoch(self, now: float) -> int:
        return int(now // self._span)

    def _evict(self, now: float) -> None:
        horizon = self._epoch(now) - self.num_buckets
        for epoch in [epoch for epoch in self._windows if epoch <= horizon]:
            del self._windows[epoch]

    def record(self, latency_ms: float, now: float, error: bool = False) -> None:
        """Account one request observed at clock time ``now`` (seconds)."""
        now = float(now)
        self._last_now = max(self._last_now, now)
        self._evict(now)
        window = self._windows.get(self._epoch(now))
        if window is None:
            window = _Window(self._new_histogram())
            self._windows[self._epoch(now)] = window
        window.histogram.record(latency_ms)
        window.total += 1
        self.total_recorded += 1
        if error or latency_ms > self.latency_slo_ms:
            window.violations += 1
            self.total_violations += 1

    def _live(self, now: Optional[float]) -> list:
        now = self._last_now if now is None else float(now)
        horizon = self._epoch(now) - self.num_buckets
        return [window for epoch, window in self._windows.items() if epoch > horizon]

    def window_requests(self, now: Optional[float] = None) -> int:
        return sum(window.total for window in self._live(now))

    def window_violations(self, now: Optional[float] = None) -> int:
        return sum(window.violations for window in self._live(now))

    def quantile(self, p: float, now: Optional[float] = None) -> float:
        """Latency quantile over the live window (0.0 when empty)."""
        live = self._live(now)
        if not live:
            return 0.0
        merged = live[0].histogram
        for window in live[1:]:
            merged = merged.merge(window.histogram)
        return merged.quantile(p)

    def p99(self, now: Optional[float] = None) -> float:
        return self.quantile(99, now)

    def violation_rate(self, now: Optional[float] = None) -> float:
        total = self.window_requests(now)
        if total == 0:
            return 0.0
        return self.window_violations(now) / total

    def error_budget_burn_rate(self, now: Optional[float] = None) -> float:
        """Observed violation rate / allowed rate.  1.0 = on budget."""
        allowed = 1.0 - self.availability_target
        return self.violation_rate(now) / allowed

    def healthy(self, now: Optional[float] = None) -> bool:
        return self.error_budget_burn_rate(now) <= 1.0

    def status(self, now: Optional[float] = None) -> Dict[str, Any]:
        """JSON-ready snapshot of the live window."""
        return {
            "latency_slo_ms": self.latency_slo_ms,
            "availability_target": self.availability_target,
            "window_seconds": self.window_seconds,
            "window_requests": self.window_requests(now),
            "window_violations": self.window_violations(now),
            "violation_rate": self.violation_rate(now),
            "error_budget_burn_rate": self.error_budget_burn_rate(now),
            "p50_ms": self.quantile(50, now),
            "p99_ms": self.p99(now),
            "healthy": self.healthy(now),
            "total_recorded": self.total_recorded,
            "total_violations": self.total_violations,
        }
