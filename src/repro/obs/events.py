"""Control-plane events: typed, timestamped, bounded.

The online loop's deployment actions — hot swaps, canary verdicts, cascade
recall probes, click-log lag observations — used to exist only as counters.
Counters answer "how many"; incident response needs "what happened, when,
with what outcome".  :class:`EventLog` keeps the most recent events in a
ring buffer (bounded memory, like everything in :mod:`repro.obs`) while
running per-kind totals survive eviction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional, Tuple

__all__ = ["Event", "EventLog", "EVENT_KINDS"]

#: The control-plane vocabulary.  ``record`` rejects unknown kinds so a
#: typo'd event name fails at the producer, not silently in a dashboard.
EVENT_KINDS = frozenset(
    {
        "hot_swap",  # a model version deployed into the serving fleet
        "canary_verdict",  # the canary gate passed/failed a candidate
        "recall_probe",  # a cascade retrieval-recall probe measurement
        "click_log_lag",  # feedback-loop freshness observation
        "cache_invalidation",  # session-cache generation bump
        "drift_score",  # per-cycle live-vs-reference drift measurement
        "alert_fired",  # an AlertRule crossed its hysteresis fire threshold
        "alert_resolved",  # a firing AlertRule cleared
        # Fault tolerance (repro.faults):
        "fault_injected",  # the fault injector fired a scheduled fault
        "load_shed",  # admission control answered a request at the fallback tier
        "degraded",  # a request was served below the full tier
        "circuit_open",  # a shard's circuit breaker tripped open
        "circuit_closed",  # a shard's circuit breaker recovered to closed
        "shard_failover",  # a request was rerouted off a failed shard
        "rollback",  # the fleet/registry reverted to the previous production version
        "quarantine",  # a corrupted candidate checkpoint was quarantined
        "retry",  # a transient train/canary failure was retried with backoff
        "state_recovered",  # persistent state (index/log/shm) was repaired at startup
        # Process fleet (repro.serving.fleet):
        "worker_spawned",  # a fleet worker process came up and acked ready
        "worker_died",  # a worker crashed or was declared hung and killed
        "worker_restarted",  # a dead worker was respawned after backoff
        "worker_quarantined",  # flap detection parked a repeatedly-dying worker
        "slab_published",  # a shared-memory snapshot slab was written and committed
        "slab_unlinked",  # a slab generation was unlinked (superseded or torn)
    }
)


@dataclass(frozen=True)
class Event:
    """One control-plane occurrence."""

    kind: str
    timestamp: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "timestamp": self.timestamp, "attrs": dict(self.attrs)}


class EventLog:
    """Ring buffer of recent events plus eviction-proof per-kind totals."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._events: Deque[Event] = deque(maxlen=self.capacity)
        self.recorded = 0
        self.dropped = 0
        self._counts: Dict[str, int] = {}

    def record(self, kind: str, timestamp: float, **attrs: Any) -> Event:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; known: {sorted(EVENT_KINDS)}")
        if len(self._events) == self.capacity:
            self.dropped += 1
        event = Event(kind, float(timestamp), attrs)
        self._events.append(event)
        self.recorded += 1
        self._counts[kind] = self._counts.get(kind, 0) + 1
        return event

    def events(self, kind: Optional[str] = None) -> Tuple[Event, ...]:
        """Retained events oldest-first, optionally filtered by kind."""
        if kind is None:
            return tuple(self._events)
        return tuple(event for event in self._events if event.kind == kind)

    def tail(self, n: int = 10) -> Tuple[Event, ...]:
        """The ``n`` most recent retained events, oldest-first."""
        return tuple(self._events)[-n:]

    def counts(self) -> Dict[str, int]:
        """Per-kind totals over everything ever recorded (incl. evicted)."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._events)

    def merge(self, other: "EventLog") -> "EventLog":
        """Chronological union, bounded by the larger capacity.

        Retains the **latest** events when the union overflows (old ones
        count as dropped), and sums the eviction-proof totals — so a fleet
        merge reports every swap that ever happened even if the ring only
        shows the recent tail.
        """
        merged = EventLog(capacity=max(self.capacity, other.capacity))
        union = sorted(
            list(self._events) + list(other._events), key=lambda event: event.timestamp
        )
        overflow = max(len(union) - merged.capacity, 0)
        for event in union[overflow:]:
            merged._events.append(event)
        merged.recorded = self.recorded + other.recorded
        merged.dropped = self.dropped + other.dropped + overflow
        for counts in (self._counts, other._counts):
            for kind, count in counts.items():
                merged._counts[kind] = merged._counts.get(kind, 0) + count
        return merged
