"""Expert-utilization analysis for mixture-of-experts rankers.

Complements the Fig. 7 study: beyond *where* gate vectors sit in
representation space, these helpers quantify *how* the mixture is used —
which experts dominate, how concentrated the routing is, and whether
different user groups activate different experts (the paper's §IV-F claim
"different user groups have been found to activate different experts").
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "gate_entropy",
    "dominant_expert_share",
    "expert_usage_by_group",
    "routing_divergence",
]


def _normalize_gates(gates: np.ndarray) -> np.ndarray:
    """Convert raw gate activations to routing distributions per row.

    AW-MoE's gate is unnormalized (Eq. 8); for utilization statistics we map
    each row to a distribution by shifting to non-negative and normalizing.
    Rows that are entirely constant become uniform.
    """
    gates = np.asarray(gates, dtype=np.float64)
    shifted = gates - gates.min(axis=1, keepdims=True)
    totals = shifted.sum(axis=1, keepdims=True)
    k = gates.shape[1]
    uniform = np.full_like(gates, 1.0 / k)
    with np.errstate(invalid="ignore", divide="ignore"):
        probs = np.where(totals > 0, shifted / np.maximum(totals, 1e-12), uniform)
    return probs


def gate_entropy(gates: np.ndarray, normalize: bool = True) -> float:
    """Mean routing entropy in nats; 0 = one-hot routing, log(K) = uniform.

    With ``normalize`` the value is divided by log(K) into [0, 1].
    """
    probs = _normalize_gates(gates)
    safe = np.clip(probs, 1e-12, 1.0)
    entropy = float(-(safe * np.log(safe)).sum(axis=1).mean())
    if normalize:
        entropy /= np.log(probs.shape[1])
    return entropy


def dominant_expert_share(gates: np.ndarray) -> np.ndarray:
    """Fraction of impressions routed primarily to each expert, shape (K,)."""
    gates = np.asarray(gates)
    winners = np.argmax(gates, axis=1)
    counts = np.bincount(winners, minlength=gates.shape[1])
    return counts / counts.sum()


def expert_usage_by_group(
    gates: np.ndarray, groups: np.ndarray
) -> Dict[int, np.ndarray]:
    """Mean routing distribution per user group.

    Returns ``{group: (K,) distribution}``; the paper's §IV-F observation is
    that these distributions differ across groups.
    """
    probs = _normalize_gates(gates)
    groups = np.asarray(groups)
    return {int(g): probs[groups == g].mean(axis=0) for g in np.unique(groups)}


def routing_divergence(gates: np.ndarray, groups: np.ndarray) -> float:
    """Mean total-variation distance of per-group routing from the overall.

    0 means every group routes identically; 1 is maximal divergence.  A
    positive value substantiates "different user groups activate different
    experts".
    """
    probs = _normalize_gates(gates)
    overall = probs.mean(axis=0)
    usage = expert_usage_by_group(gates, groups)
    distances = [0.5 * np.abs(dist - overall).sum() for dist in usage.values()]
    return float(np.mean(distances))
