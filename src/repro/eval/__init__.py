"""``repro.eval`` — metrics, significance tests, and analysis drivers."""

from repro.eval.auc import binary_auc, global_auc, session_auc, session_auc_at_k
from repro.eval.clustering import fig7_user_groups, nearest_centroid_purity, silhouette_score
from repro.eval.evaluator import (
    METRIC_NAMES,
    evaluate_global_auc,
    evaluate_ranking,
    predict_scores,
)
from repro.eval.experts import (
    dominant_expert_share,
    expert_usage_by_group,
    gate_entropy,
    routing_divergence,
)
from repro.eval.importance import FeatureImportanceResult, feature_importance_by_user_group
from repro.eval.ndcg import dcg, session_ndcg
from repro.eval.significance import (
    paired_bootstrap_pvalue,
    session_metric_samples,
    two_proportion_z_test,
)
from repro.eval.tsne import TSNEParams, tsne

__all__ = [
    "binary_auc",
    "global_auc",
    "session_auc",
    "session_auc_at_k",
    "fig7_user_groups",
    "nearest_centroid_purity",
    "silhouette_score",
    "METRIC_NAMES",
    "evaluate_global_auc",
    "evaluate_ranking",
    "predict_scores",
    "FeatureImportanceResult",
    "feature_importance_by_user_group",
    "dominant_expert_share",
    "expert_usage_by_group",
    "gate_entropy",
    "routing_divergence",
    "dcg",
    "session_ndcg",
    "paired_bootstrap_pvalue",
    "session_metric_samples",
    "two_proportion_z_test",
    "TSNEParams",
    "tsne",
]
