"""Fig. 2 driver: GBDT feature importance per user group.

The paper trains XGBoost on impressions of *category-new* users (no history
in the target item's category) and *category-old* users separately, and
observes that popularity-side features (sales, popularity, price) dominate
for category-new users while two-sided features (item/shop click counts,
brand click recency) dominate for category-old users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import RankingDataset
from repro.data.schema import FIG2_FEATURES
from repro.gbdt import GBDTParams, GradientBoostedTrees

__all__ = ["FeatureImportanceResult", "feature_importance_by_user_group"]

_CATEGORY_CNT = "category_click_cnt"


@dataclass
class FeatureImportanceResult:
    """Normalized importances for the Fig. 2 feature subset, per user group."""

    feature_names: Tuple[str, ...]
    new_user: np.ndarray
    old_user: np.ndarray

    def rows(self) -> Sequence[Sequence[object]]:
        """Table rows: feature, category-new importance, category-old."""
        out = []
        for i, name in enumerate(self.feature_names):
            out.append((name, round(float(self.new_user[i]), 4), round(float(self.old_user[i]), 4)))
        return out

    def popularity_mass(self, group: str) -> float:
        """Combined importance of one-sided popularity features
        (sales + popularity + price) for ``group`` in {"new", "old"}."""
        values = self.new_user if group == "new" else self.old_user
        picks = [self.feature_names.index(n) for n in ("sales", "popularity", "price")]
        return float(values[picks].sum())

    def two_sided_mass(self, group: str) -> float:
        """Combined importance of two-sided features for ``group``."""
        values = self.new_user if group == "new" else self.old_user
        picks = [
            self.feature_names.index(n)
            for n in ("item_click_cnt", "brand_click_time_diff", "shop_click_cnt")
        ]
        return float(values[picks].sum())


def feature_importance_by_user_group(
    dataset: RankingDataset,
    params: Optional[GBDTParams] = None,
    rng: Optional[np.random.Generator] = None,
    feature_names: Tuple[str, ...] = FIG2_FEATURES,
) -> FeatureImportanceResult:
    """Train one GBDT per user group and report Fig. 2's importances.

    ``category-new`` users are impressions whose ``category_click_cnt`` cross
    feature is zero (the paper's definition: no historical behaviour in the
    category of the target item).
    """
    if params is None:
        params = GBDTParams(num_rounds=40, max_depth=3, learning_rate=0.2)
    cat_cnt = dataset.other_features[:, dataset.meta.feature_index(_CATEGORY_CNT)]
    groups = {
        "new": np.flatnonzero(cat_cnt == 0.0),
        "old": np.flatnonzero(cat_cnt > 0.0),
    }
    columns = [dataset.meta.feature_index(name) for name in feature_names]
    importances: Dict[str, np.ndarray] = {}
    for group, rows in groups.items():
        if rows.size < 50:
            raise ValueError(f"too few impressions ({rows.size}) in the {group!r} user group")
        features = dataset.other_features[rows][:, columns].astype(np.float64)
        labels = dataset.label[rows].astype(np.float64)
        model = GradientBoostedTrees(params, rng=rng)
        model.fit(features, labels)
        importances[group] = model.feature_importances("gain")
    return FeatureImportanceResult(
        feature_names=tuple(feature_names),
        new_user=importances["new"],
        old_user=importances["old"],
    )
