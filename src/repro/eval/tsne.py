"""Exact t-SNE (van der Maaten & Hinton, 2008) for the Fig. 7 study.

A compact O(n²) implementation: Gaussian input affinities with per-point
perplexity calibration (binary search), Student-t output affinities, gradient
descent with momentum and early exaggeration.  Fine for the ≤2k gate vectors
Fig. 7 visualizes; no Barnes-Hut approximation is needed at that size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["TSNEParams", "tsne"]


@dataclass(frozen=True)
class TSNEParams:
    """t-SNE hyper-parameters (defaults follow the reference implementation)."""

    perplexity: float = 30.0
    num_iters: int = 400
    learning_rate: float = 100.0
    early_exaggeration: float = 4.0
    exaggeration_iters: int = 100
    initial_momentum: float = 0.5
    final_momentum: float = 0.8
    momentum_switch_iter: int = 120

    def __post_init__(self) -> None:
        if self.perplexity <= 1:
            raise ValueError("perplexity must be > 1")
        if self.num_iters < 1:
            raise ValueError("num_iters must be >= 1")


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    norms = (x * x).sum(axis=1)
    d = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d, 0.0)
    return np.maximum(d, 0.0)


def _conditional_probs(dists_row: np.ndarray, beta: float) -> np.ndarray:
    p = np.exp(-dists_row * beta)
    total = p.sum()
    if total <= 0:
        return np.zeros_like(p)
    return p / total


def _calibrate_row(dists_row: np.ndarray, target_entropy: float, tol: float = 1e-5) -> np.ndarray:
    """Binary-search the Gaussian precision matching the target perplexity."""
    beta, beta_min, beta_max = 1.0, 0.0, np.inf
    probs = _conditional_probs(dists_row, beta)
    for _ in range(50):
        nonzero = probs[probs > 0]
        entropy = float(-(nonzero * np.log(nonzero)).sum())
        diff = entropy - target_entropy
        if abs(diff) < tol:
            break
        if diff > 0:
            beta_min = beta
            beta = beta * 2 if beta_max == np.inf else (beta + beta_max) / 2
        else:
            beta_max = beta
            beta = beta / 2 if beta_min == 0.0 else (beta + beta_min) / 2
        probs = _conditional_probs(dists_row, beta)
    return probs


def _input_affinities(x: np.ndarray, perplexity: float) -> np.ndarray:
    n = len(x)
    dists = _pairwise_sq_dists(x)
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        row = np.delete(dists[i], i)
        probs = _calibrate_row(row, target_entropy)
        p[i, np.arange(n) != i] = probs
    p = (p + p.T) / (2.0 * n)
    return np.maximum(p, 1e-12)


def tsne(
    x: np.ndarray,
    params: Optional[TSNEParams] = None,
    rng: Optional[np.random.Generator] = None,
    dim: int = 2,
) -> np.ndarray:
    """Embed rows of ``x`` into ``dim`` dimensions.

    Returns an ``(n, dim)`` array.  Deterministic given ``rng``.
    """
    if params is None:
        params = TSNEParams()
    if rng is None:
        rng = np.random.default_rng(0)
    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    if n < 5:
        raise ValueError(f"t-SNE needs at least 5 points, got {n}")
    perplexity = min(params.perplexity, (n - 1) / 3.0)
    p = _input_affinities(x, perplexity) * params.early_exaggeration

    y = rng.normal(0.0, 1e-4, size=(n, dim))
    velocity = np.zeros_like(y)
    gains = np.ones_like(y)

    for iteration in range(params.num_iters):
        dists = _pairwise_sq_dists(y)
        inv = 1.0 / (1.0 + dists)
        np.fill_diagonal(inv, 0.0)
        q = np.maximum(inv / inv.sum(), 1e-12)

        pq = (p - q) * inv
        grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)

        momentum = (
            params.initial_momentum
            if iteration < params.momentum_switch_iter
            else params.final_momentum
        )
        same_sign = np.sign(grad) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - params.learning_rate * gains * grad
        y = y + velocity
        y = y - y.mean(axis=0)

        if iteration == params.exaggeration_iters:
            p = p / params.early_exaggeration
    return y
