"""Cluster-quality scores for the Fig. 7 gate-representation study.

The paper shows a qualitative t-SNE plot where user groups (new users, old
users with/without a past order on the target item) form separate clusters.
We quantify that with the silhouette coefficient and a nearest-centroid
purity, so the benchmark can assert "groups are separated" numerically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["silhouette_score", "nearest_centroid_purity", "fig7_user_groups"]


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points (O(n²), exact).

    +1 means tight, well-separated clusters; 0 means overlapping; negative
    means mis-assigned points.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValueError("silhouette needs at least 2 distinct labels")
    norms = (points * points).sum(axis=1)
    dists = np.sqrt(
        np.maximum(norms[:, None] + norms[None, :] - 2.0 * points @ points.T, 0.0)
    )
    scores = np.zeros(len(points))
    for i in range(len(points)):
        same = labels == labels[i]
        same[i] = False
        if not same.any():
            scores[i] = 0.0
            continue
        a = dists[i, same].mean()
        b = min(dists[i, labels == other].mean() for other in unique if other != labels[i])
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def nearest_centroid_purity(points: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of points whose nearest group centroid is their own group."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    centroids = np.stack([points[labels == value].mean(axis=0) for value in unique])
    dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    assigned = unique[np.argmin(dists, axis=1)]
    return float((assigned == labels).mean())


def fig7_user_groups(behavior_lengths: np.ndarray, item_click_cnt: np.ndarray) -> np.ndarray:
    """The paper's three Fig. 7 user groups as integer labels.

    0 = new user (no historical behaviours),
    1 = old user without a past order on the target item,
    2 = old user with a past order on the target item.
    """
    lengths = np.asarray(behavior_lengths)
    clicks = np.asarray(item_click_cnt)
    groups = np.where(lengths == 0, 0, np.where(clicks > 0, 2, 1))
    return groups.astype(np.int64)
