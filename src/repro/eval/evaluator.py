"""Model evaluation driver: scores a dataset and computes the paper's metrics.

Produces exactly the four columns of Tables II–IV (AUC, AUC@10, NDCG,
NDCG@10) or the single AUC column of Table V, plus bootstrap p-values against
reference models via :mod:`repro.eval.significance`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.ranking_model import RankingModel
from repro.data.dataset import RankingDataset, iterate_batches
from repro.eval.auc import global_auc, session_auc, session_auc_at_k
from repro.eval.ndcg import session_ndcg

__all__ = ["predict_scores", "evaluate_ranking", "METRIC_NAMES"]

METRIC_NAMES = ("auc", "auc@10", "ndcg", "ndcg@10")


def predict_scores(
    model: RankingModel, dataset: RankingDataset, batch_size: int = 1024
) -> np.ndarray:
    """Predicted probabilities for every impression, in dataset order.

    ``model`` is anything exposing ``predict_proba(batch)`` — an eager
    :class:`~repro.core.ranking_model.RankingModel` or a compiled
    :class:`~repro.infer.CompiledModel` (the canary gate replays through
    the latter).
    """
    chunks = []
    for batch in iterate_batches(dataset, batch_size):
        chunks.append(model.predict_proba(batch))
    return np.concatenate(chunks)


def evaluate_ranking(
    model: RankingModel,
    dataset: RankingDataset,
    batch_size: int = 1024,
    k: int = 10,
    scores: Optional[np.ndarray] = None,
) -> Dict[str, float]:
    """All four session metrics for one model on one test set.

    Pass precomputed ``scores`` to avoid re-running inference (the
    significance tests reuse them).
    """
    if scores is None:
        scores = predict_scores(model, dataset, batch_size)
    labels = dataset.label
    sessions = dataset.session_id
    return {
        "auc": session_auc(scores, labels, sessions),
        f"auc@{k}": session_auc_at_k(scores, labels, sessions, k=k),
        "ndcg": session_ndcg(scores, labels, sessions),
        f"ndcg@{k}": session_ndcg(scores, labels, sessions, k=k),
    }


def evaluate_global_auc(
    model: RankingModel, dataset: RankingDataset, batch_size: int = 1024
) -> Dict[str, float]:
    """Overall AUC only — the Amazon-protocol metric of Table V."""
    scores = predict_scores(model, dataset, batch_size)
    return {"auc": global_auc(scores, dataset.label)}
