"""Statistical significance tests.

The paper reports p-values for every metric delta relative to DNN and to
Category-MoE (Tables II–V) and a two-proportion test for the online A/B
experiment (§IV-I).  Offline metrics use a paired session-level bootstrap:
sessions are resampled with replacement and the p-value is the fraction of
resamples in which the challenger does not beat the reference.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from scipy.stats import norm

from repro.eval.auc import binary_auc
from repro.eval.ndcg import dcg

__all__ = [
    "paired_bootstrap_pvalue",
    "session_metric_samples",
    "two_proportion_z_test",
]


def session_metric_samples(
    scores: np.ndarray,
    labels: np.ndarray,
    sessions: np.ndarray,
    metric: str,
    k: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-session metric values and the session ids that produced them.

    ``metric`` is ``"auc"`` or ``"ndcg"``; ``k`` applies the top-k cutoff.
    Sessions where the metric is undefined are dropped (consistently for
    paired comparisons because the *labels* determine definedness for ndcg,
    while for auc@k the model's own top-k does).
    """
    from repro.eval.auc import _session_rows

    values = []
    ids = []
    for rows in _session_rows(np.asarray(sessions)):
        session_scores = scores[rows]
        session_labels = labels[rows]
        if metric == "auc":
            if k is not None:
                top = np.argsort(-session_scores, kind="stable")[:k]
                session_scores = session_scores[top]
                session_labels = session_labels[top]
            value = binary_auc(session_scores, session_labels)
        elif metric == "ndcg":
            ideal = dcg(np.sort(session_labels)[::-1], k)
            if ideal == 0.0:
                value = None
            else:
                order = np.argsort(-session_scores, kind="stable")
                value = dcg(session_labels[order], k) / ideal
        else:
            raise ValueError(f"unknown metric {metric!r}")
        if value is not None:
            values.append(value)
            ids.append(sessions[rows[0]])
    return np.asarray(values, dtype=float), np.asarray(ids)


def paired_bootstrap_pvalue(
    scores_a: np.ndarray,
    scores_b: np.ndarray,
    labels: np.ndarray,
    sessions: np.ndarray,
    metric: str = "auc",
    k: Optional[int] = None,
    num_resamples: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """One-sided p-value that model B improves on model A.

    Per-session metric values are computed for both models; sessions defined
    for both are paired, resampled with replacement ``num_resamples`` times,
    and the p-value is the fraction of resamples where mean(B) <= mean(A)
    (add-one smoothed so the p-value is never exactly zero).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    values_a, ids_a = session_metric_samples(scores_a, labels, sessions, metric, k)
    values_b, ids_b = session_metric_samples(scores_b, labels, sessions, metric, k)
    common, idx_a, idx_b = np.intersect1d(ids_a, ids_b, return_indices=True)
    if common.size < 2:
        raise ValueError("fewer than two sessions defined for both models")
    deltas = values_b[idx_b] - values_a[idx_a]
    n = deltas.size
    draws = rng.integers(0, n, size=(num_resamples, n))
    resampled_means = deltas[draws].mean(axis=1)
    worse = int((resampled_means <= 0).sum())
    return float((worse + 1) / (num_resamples + 1))


def two_proportion_z_test(
    successes_a: int, total_a: int, successes_b: int, total_b: int
) -> Tuple[float, float]:
    """Two-proportion z-test; returns ``(z, one_sided_p_that_b_better)``.

    Used for the online A/B simulation: UCTR/UCVR are user-level success
    proportions (§IV-I).
    """
    if min(total_a, total_b) <= 0:
        raise ValueError("totals must be positive")
    p_a = successes_a / total_a
    p_b = successes_b / total_b
    pooled = (successes_a + successes_b) / (total_a + total_b)
    variance = pooled * (1 - pooled) * (1 / total_a + 1 / total_b)
    if variance == 0:
        return 0.0, 0.5
    z = (p_b - p_a) / np.sqrt(variance)
    p_value = float(norm.sf(z))
    return float(z), p_value
