"""Session-grouped AUC metrics (paper Eq. 12).

The paper averages a per-session pairwise AUC over all test sessions, and
additionally reports ``AUC@10`` computed on each session's top-10 items by
predicted score.  Sessions lacking both a positive and a negative (within the
cutoff, for @10) are skipped, as they contribute no pairs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from scipy.stats import rankdata

__all__ = ["binary_auc", "session_auc", "session_auc_at_k", "global_auc"]


def binary_auc(scores: np.ndarray, labels: np.ndarray) -> Optional[float]:
    """Pairwise AUC for one group; ``None`` when only one class is present.

    Uses the rank-sum formulation with average ranks, so score ties count
    half — equivalent to the indicator double-sum of Eq. 12 with the usual
    1/2 tie convention.
    """
    labels = np.asarray(labels)
    scores = np.asarray(scores)
    positives = int((labels == 1).sum())
    negatives = int((labels == 0).sum())
    if positives == 0 or negatives == 0:
        return None
    ranks = rankdata(scores)
    rank_sum = ranks[labels == 1].sum()
    return float((rank_sum - positives * (positives + 1) / 2) / (positives * negatives))


def session_auc(scores: np.ndarray, labels: np.ndarray, sessions: np.ndarray) -> float:
    """Mean per-session AUC (Eq. 12) over sessions with both classes."""
    values = []
    for rows in _session_rows(sessions):
        auc = binary_auc(scores[rows], labels[rows])
        if auc is not None:
            values.append(auc)
    if not values:
        raise ValueError("no session contains both a positive and a negative")
    return float(np.mean(values))


def session_auc_at_k(
    scores: np.ndarray, labels: np.ndarray, sessions: np.ndarray, k: int = 10
) -> float:
    """Mean per-session AUC over each session's top-``k`` predicted items."""
    if k < 2:
        raise ValueError(f"k must be >= 2 for a pairwise metric, got {k}")
    values = []
    for rows in _session_rows(sessions):
        top = rows[np.argsort(-scores[rows], kind="stable")[:k]]
        auc = binary_auc(scores[top], labels[top])
        if auc is not None:
            values.append(auc)
    if not values:
        raise ValueError(f"no session has both classes within its top-{k}")
    return float(np.mean(values))


def global_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Ungrouped AUC over all examples (used for the Amazon protocol,
    where each user contributes one positive and one sampled negative)."""
    auc = binary_auc(scores, labels)
    if auc is None:
        raise ValueError("global AUC needs both classes present")
    return auc


def _session_rows(sessions: np.ndarray):
    """Yield row-index arrays per session (order-independent)."""
    sessions = np.asarray(sessions)
    order = np.argsort(sessions, kind="stable")
    sorted_sessions = sessions[order]
    boundaries = np.flatnonzero(np.diff(sorted_sessions)) + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [len(sessions)]])
    for start, stop in zip(starts, stops):
        yield order[start:stop]
