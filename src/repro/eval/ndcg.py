"""Session-grouped NDCG metrics (paper Eq. 13).

Binary gains with the position discount ``1/log2(i+1)``; the DCG of the
predicted ordering is normalized by the DCG of the label-ideal ordering.
``NDCG@10`` truncates both orderings at rank 10.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.eval.auc import _session_rows

__all__ = ["session_ndcg", "dcg"]


def dcg(ordered_labels: np.ndarray, k: Optional[int] = None) -> float:
    """Discounted cumulative gain of labels in ranked order."""
    labels = np.asarray(ordered_labels, dtype=float)
    if k is not None:
        labels = labels[:k]
    if labels.size == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, labels.size + 2))
    return float((labels * discounts).sum())


def session_ndcg(
    scores: np.ndarray,
    labels: np.ndarray,
    sessions: np.ndarray,
    k: Optional[int] = None,
) -> float:
    """Mean per-session NDCG (Eq. 13); ``k`` truncates at a cutoff.

    Sessions with no positive item have an undefined ideal DCG and are
    skipped, mirroring the AUC treatment.
    """
    values = []
    for rows in _session_rows(sessions):
        session_labels = labels[rows]
        ideal = dcg(np.sort(session_labels)[::-1], k)
        if ideal == 0.0:
            continue
        order = np.argsort(-scores[rows], kind="stable")
        realized = dcg(session_labels[order], k)
        values.append(realized / ideal)
    if not values:
        raise ValueError("no session contains a positive item")
    return float(np.mean(values))
