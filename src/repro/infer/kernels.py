"""Fused NumPy kernels for the compiled inference path.

Every kernel here writes into caller-provided buffers (leased from a
:class:`~repro.infer.plan.BufferArena`) via NumPy's ``out=`` / in-place
machinery, so a steady-state plan execution performs **zero array
allocations** — the training autodiff's per-op allocation and graph
bookkeeping are gone entirely.

Two execution styles share these kernels:

* **fused float32** (production): activations applied in place, the K expert
  heads evaluated as one packed GEMM per layer (see :class:`PackedExperts`);
* **float64 parity** (testing): the compiler keeps the exact op order of the
  eager :class:`~repro.nn.tensor.Tensor` forward so results are bitwise
  reproducible against a float64 eager model (``tests/infer/test_parity.py``).

The kernels are deliberately *not* differentiable — this module never builds
tensors; training keeps using :mod:`repro.nn`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ACTIVATIONS_INPLACE",
    "PackedMLP",
    "PackedExperts",
    "gather_rows",
    "pairwise_concat",
    "masked_pool",
    "sigmoid_",
    "softmax_",
    "sparsify_top_k_",
]


def _relu_(buf: np.ndarray) -> None:
    np.maximum(buf, 0, out=buf)


def _sigmoid_(buf: np.ndarray) -> None:
    sigmoid_(buf)


def _tanh_(buf: np.ndarray) -> None:
    np.tanh(buf, out=buf)


def _leaky_relu_(buf: np.ndarray) -> None:
    # The one activation that cannot be fully in-place: the where= mask is a
    # transient bool allocation.  No current model config selects leaky_relu
    # on a compiled path; if one ever does, route the mask through the arena.
    np.multiply(buf, 0.01, out=buf, where=buf < 0)


def _identity_(buf: np.ndarray) -> None:
    return None


#: In-place activation kernels keyed by the layer-zoo activation names.
ACTIVATIONS_INPLACE: dict = {
    "relu": _relu_,
    "sigmoid": _sigmoid_,
    "tanh": _tanh_,
    "leaky_relu": _leaky_relu_,
    "linear": _identity_,
    None: _identity_,
}


def sigmoid_(buf: np.ndarray) -> None:
    """In-place logistic function via the same ops as ``predict_proba``:
    ``clip(-60, 60)`` then ``1 / (1 + exp(-x))``."""
    buf.clip(-60, 60, out=buf)
    np.negative(buf, out=buf)
    np.exp(buf, out=buf)
    buf += 1.0
    np.divide(1.0, buf, out=buf)


def softmax_(buf: np.ndarray, scratch_max: np.ndarray, scratch_sum: np.ndarray) -> None:
    """In-place softmax over the last axis, mirroring :func:`repro.nn.ops.
    softmax`'s shifted-exp formulation (``scratch_*`` are ``(..., 1)``)."""
    buf.max(axis=-1, keepdims=True, out=scratch_max)
    buf -= scratch_max
    np.exp(buf, out=buf)
    buf.sum(axis=-1, keepdims=True, out=scratch_sum)
    buf /= scratch_sum


def sparsify_top_k_(
    gate: np.ndarray, top_k: int, scratch_sorted: np.ndarray, scratch_drop: np.ndarray
) -> None:
    """In-place top-K sparsification replicating :func:`repro.core.extensions.
    sparse_gate.sparse_top_k` (ties at the threshold survive)."""
    if top_k >= gate.shape[-1]:
        return
    scratch_sorted[...] = gate
    scratch_sorted.sort(axis=-1)
    np.less(gate, scratch_sorted[:, -top_k][:, None], out=scratch_drop)
    np.copyto(gate, 0.0, where=scratch_drop)


def gather_rows(table: np.ndarray, indices: np.ndarray, out: np.ndarray) -> None:
    """``out[...] = table[indices]`` without temporary allocation.

    ``out`` may be a strided slice of a wider concat buffer (``ndarray.take``
    buffers through it directly).  Out-of-range ids raise ``IndexError``
    exactly like :class:`repro.nn.layers.Embedding`.
    """
    table.take(indices, axis=0, out=out)


class PackedMLP:
    """An :class:`repro.nn.layers.MLP` frozen into contiguous weight arrays.

    ``layers`` holds ``(W, b, activation)`` triples in execution order;
    weights are packed once at compile time in the plan dtype.  Dropout
    layers vanish (inference always runs eval semantics).
    """

    __slots__ = ("layers", "in_features", "out_features", "_program")

    def __init__(self, layers: List[Tuple[np.ndarray, Optional[np.ndarray], Optional[str]]]):
        if not layers:
            raise ValueError("PackedMLP needs at least one layer")
        self.layers = layers
        self.in_features = int(layers[0][0].shape[0])
        self.out_features = int(layers[-1][0].shape[1])
        # Per-layer (slot, W, b, activation_kernel) resolved once at pack
        # time so the hot loop does no string formatting or dict lookups.
        self._program = [
            (f"fc{i}", weight, bias, ACTIVATIONS_INPLACE[act])
            for i, (weight, bias, act) in enumerate(layers)
        ]

    @staticmethod
    def from_module(mlp, dtype: np.dtype) -> "PackedMLP":
        """Pack a :class:`repro.nn.layers.MLP` (weights copied, contiguous)."""
        layers = []
        last = len(mlp._linears) - 1
        for i, linear in enumerate(mlp._linears):
            act = mlp.output_activation if i == last else mlp.activation
            # Always a copy: a plan must be a snapshot, never an alias of
            # live training weights (hot-swap compiles the new model while
            # the old plan keeps serving).
            weight = np.array(linear.weight.detach_numpy(), dtype=dtype, order="C")
            bias = (
                np.array(linear.bias.detach_numpy(), dtype=dtype, order="C")
                if linear.bias is not None
                else None
            )
            layers.append((weight, bias, act))
        return PackedMLP(layers)

    def run(self, x2d: np.ndarray, lease: Callable[[str, Tuple[int, ...]], np.ndarray]) -> np.ndarray:
        """Forward ``x2d`` (N, in) through every layer.

        ``lease(slot, shape)`` returns a reusable buffer (the plan binds it
        to the arena with a step-unique key prefix).  The returned array is
        the last leased buffer.
        """
        h = x2d
        rows = x2d.shape[0]
        for slot, weight, bias, act in self._program:
            out = lease(slot, (rows, weight.shape[1]))
            np.matmul(h, weight, out=out)
            if bias is not None:
                out += bias
            act(out)
            h = out
        return h


class PackedExperts:
    """K expert MLPs fused for one-shot evaluation (fused mode).

    Layer 0 of every expert is packed **horizontally** into a single
    ``(D, K*H)`` matrix — one GEMM scores all experts' first layers at once.
    Deeper layers are stacked into ``(K, H_in, H_out)`` tensors and run as a
    single batched matmul.  In parity mode the compiler bypasses this class
    and evaluates experts one by one in the eager op order instead.
    """

    __slots__ = ("first_weight", "first_bias", "first_act", "deep", "num_experts", "widths", "_deep_program")

    def __init__(self, experts: Sequence, dtype: np.dtype):
        packs = [PackedMLP.from_module(e.mlp, dtype) for e in experts]
        self.num_experts = len(packs)
        depth = len(packs[0].layers)
        self.widths = [w for (w, _, _) in packs[0].layers]
        self.first_weight = np.ascontiguousarray(
            np.concatenate([p.layers[0][0] for p in packs], axis=1)
        )
        biases = [p.layers[0][1] for p in packs]
        self.first_bias = (
            np.concatenate(biases) if biases[0] is not None else None
        )
        self.first_act = packs[0].layers[0][2]
        # Deeper layers: (K, H_in, H_out) weight stacks + (K, 1, H_out) biases.
        self.deep: List[Tuple[np.ndarray, Optional[np.ndarray], Optional[str]]] = []
        for layer in range(1, depth):
            w = np.ascontiguousarray(np.stack([p.layers[layer][0] for p in packs]))
            b = (
                np.ascontiguousarray(
                    np.stack([p.layers[layer][1] for p in packs])[:, None, :]
                )
                if packs[0].layers[layer][1] is not None
                else None
            )
            self.deep.append((w, b, packs[0].layers[layer][2]))
        self._deep_program = [
            (f"kbh{i + 1}", w, b, ACTIVATIONS_INPLACE[act])
            for i, (w, b, act) in enumerate(self.deep)
        ]

    def run(
        self, v_imp: np.ndarray, lease: Callable[[str, Tuple[int, ...]], np.ndarray]
    ) -> np.ndarray:
        """Expert score matrix ``(B, K)`` for impressions ``v_imp`` (B, D)."""
        batch = v_imp.shape[0]
        k = self.num_experts
        h1_width = self.first_weight.shape[1] // k
        h1 = lease("h1", (batch, k * h1_width))
        np.matmul(v_imp, self.first_weight, out=h1)
        if self.first_bias is not None:
            h1 += self.first_bias
        ACTIVATIONS_INPLACE[self.first_act](h1)
        if not self.deep:
            return h1  # single-layer experts: h1 already is (B, K)
        # (B, K*H) -> (K, B, H) for batched per-expert GEMMs.
        h = lease("kbh0", (k, batch, h1_width))
        h[...] = h1.reshape(batch, k, h1_width).transpose(1, 0, 2)
        for slot, weight, bias, act in self._deep_program:
            out = lease(slot, (k, batch, weight.shape[2]))
            np.matmul(h, weight, out=out)
            if bias is not None:
                out += bias
            act(out)
            h = out
        scores = lease("scores", (batch, k))
        scores[...] = h.reshape(k, batch).T
        return scores


def pairwise_concat(
    h_seq: np.ndarray,
    h_key: np.ndarray,
    out: np.ndarray,
) -> None:
    """The activation/gate units' input ``[h_seq ‖ h_seq⊙key ‖ key]``.

    Fuses the eager path's ``expand_dims + broadcast_to + concat`` (two full
    materialized copies) into three strided writes on ``out`` (B, M, 3H).
    """
    hidden = h_seq.shape[-1]
    out[..., :hidden] = h_seq
    np.multiply(h_seq, h_key[:, None, :], out=out[..., hidden : 2 * hidden])
    out[..., 2 * hidden :] = h_key[:, None, :]


def masked_pool(
    h_seq: np.ndarray,
    weights: np.ndarray,
    scratch: np.ndarray,
    out: np.ndarray,
) -> None:
    """``out = (h_seq * weights[:, :, None]).sum(axis=1)`` — the attention
    pooling of Eq. 3 — with ``scratch`` (B, M, H) absorbing the product."""
    np.multiply(h_seq, weights[:, :, None], out=scratch)
    scratch.sum(axis=1, out=out)
