"""Shared-memory snapshot slabs: zero-copy model/index publishing.

The compiled plan packs weights into contiguous float32 buffers (PR 3) and
the cascade's :class:`~repro.retrieval.index.ItemIndex` stores each
partition as one cell-ordered slab (PR 5) precisely so a process fleet can
*map* them instead of copying them.  This module is that mapping layer: a
:class:`SnapshotSlab` serializes an arbitrary payload (model, world,
detached cascade) into **one** POSIX shared-memory segment where every
numpy array is externalized into a 64-byte-aligned data region, and
attaching the segment from a worker process reconstructs the payload with
the arrays as *read-only views* into the shared pages — the weights exist
once in physical memory no matter how many workers serve from them.

Publish protocol (crash-safe by construction)::

    segment layout:  [header 32B][pickle bytes][pad][aligned array region]

    1. pickle the payload with an externalizing pickler (arrays → offsets)
    2. create the segment, write the array region, write the pickle bytes
    3. CRC32 the whole body
    4. commit by writing the header (magic + CRC) **last**

A reader attaching mid-publish sees a missing segment or a zeroed header —
never a half-written payload — so generation flips are atomic at the
segment level: publish new → verify → flip readers → unlink old.  A torn
publish (the ``slab.publish`` ``torn_write`` fault, or a real crash
mid-write) leaves an uncommitted segment that :func:`sweep_orphan_slabs`
reclaims at the next supervisor startup.

Lifecycle is managed manually (the supervisor unlinks; the sweep catches
crashes), so segments are unregistered from the CPython resource tracker —
otherwise every *attach* registers the segment and the first worker to
exit would unlink it under the rest of the fleet (bpo-39959).
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
import struct
import zlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.faults.injector import NULL_INJECTOR

try:  # pragma: no cover - exercised implicitly on every import
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - platforms without _posixshmem
    _shm = None

__all__ = [
    "SnapshotSlab",
    "SlabFormatError",
    "TornSlabError",
    "sweep_orphan_slabs",
    "shared_memory_available",
    "SLAB_PREFIX",
]

#: Segment-name prefix; the orphan sweep reclaims anything under it whose
#: creator pid is gone.  Names are ``repro_slab_<pid>_<counter>``.
SLAB_PREFIX = "repro_slab"

_MAGIC = b"RPSLAB01"
_HEADER = struct.Struct("<8sIIQQ")  # magic, version, crc32, pickle_len, total_len
_HEADER_SIZE = 32
assert _HEADER.size <= _HEADER_SIZE
_FORMAT_VERSION = 1
_ALIGN = 64
_PID_TAG = "repro-slab-ndarray"

_name_counter = itertools.count()


class SlabFormatError(ValueError):
    """The segment exists but is not a committed slab (torn or foreign)."""


class TornSlabError(RuntimeError):
    """A publish was torn partway (injected or real); the partial segment
    is attached on ``.slab`` so the caller can destroy it before retrying."""

    def __init__(self, message: str, slab: "SnapshotSlab") -> None:
        super().__init__(message)
        self.slab = slab


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class _untracked:
    """Suppress resource-tracker registration for the enclosed segment ops.

    ``SharedMemory`` registers every create *and attach* with the CPython
    resource tracker, which (a) unlinks segments when any registering
    process exits — under the rest of a fleet still serving from them —
    and (b) collapses duplicate registrations across processes into one
    set entry, so unregister-after-the-fact races KeyError noise in the
    tracker (bpo-39959).  Slab lifecycle is owned by the supervisor (and
    the orphan sweep), so registration is suppressed at the source by
    patching ``resource_tracker.register`` for the construction only —
    ``shared_memory`` resolves it as a module attribute at call time.
    """

    def __enter__(self) -> "_untracked":
        try:
            from multiprocessing import resource_tracker

            self._module = resource_tracker
            self._originals = (resource_tracker.register, resource_tracker.unregister)
            resource_tracker.register = self._skipping(self._originals[0])
            resource_tracker.unregister = self._skipping(self._originals[1])
        except Exception:
            self._module = None
        return self

    @staticmethod
    def _skipping(original: Callable) -> Callable:
        def tracked(name: str, rtype: str) -> None:
            if rtype != "shared_memory":
                original(name, rtype)

        return tracked

    def __exit__(self, *exc_info: Any) -> None:
        if self._module is not None:
            self._module.register, self._module.unregister = self._originals


class _SlabPickler(pickle.Pickler):
    """Externalize every plain ndarray into the slab's array region.

    Offsets are relative to the region start (the pickle's own length is
    unknown while pickling).  Arrays are deduplicated by object identity so
    a payload holding the same weight tensor twice (e.g. ``payload["model"]``
    and the cascade's ``_model``) stores its bytes once.
    """

    def __init__(self, file: io.BytesIO) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.arrays: List[Tuple[int, np.ndarray]] = []
        self.cursor = 0
        self._seen: Dict[int, Tuple] = {}

    def persistent_id(self, obj: Any) -> Optional[Tuple]:
        if type(obj) is not np.ndarray or obj.dtype.hasobject:
            return None
        key = id(obj)
        if key in self._seen:
            return self._seen[key]
        array = np.ascontiguousarray(obj)
        offset = _align(self.cursor)
        self.cursor = offset + array.nbytes
        self.arrays.append((offset, array))
        pid = (_PID_TAG, offset, array.shape, array.dtype.str)
        self._seen[key] = pid
        return pid


class _SlabUnpickler(pickle.Unpickler):
    """Resolve externalized arrays to read-only views over the segment."""

    def __init__(self, file: io.BytesIO, buf: memoryview, region_start: int) -> None:
        super().__init__(file)
        self._buf = buf
        self._region = region_start

    def persistent_load(self, pid: Tuple) -> np.ndarray:
        tag, offset, shape, dtype = pid
        if tag != _PID_TAG:
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        view = np.ndarray(shape, np.dtype(dtype), buffer=self._buf, offset=self._region + offset)
        view.flags.writeable = False
        return view


class SnapshotSlab:
    """One published payload in one shared-memory segment.

    Create with :meth:`publish` (writer side) or :meth:`attach` (reader
    side).  ``payload`` holds the reconstructed object graph on the reader;
    on the writer it is the object that was published.  A reader must keep
    its handle alive for as long as any payload array view is reachable
    (:meth:`close` unmaps immediately — views do not pin the mapping); the
    kernel does keep mapped pages valid after the *writer* unlinks the
    name, so a worker mid-query during a generation flip never faults.
    """

    def __init__(
        self,
        segment: Any,
        name: str,
        payload: Any,
        nbytes: int,
        pickle_bytes: int,
        array_bytes: int,
    ) -> None:
        self._segment = segment
        self.name = name
        self.payload = payload
        #: Committed segment size (header + pickle + aligned array region).
        self.nbytes = int(nbytes)
        self.pickle_bytes = int(pickle_bytes)
        self.array_bytes = int(array_bytes)

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    @classmethod
    def publish(
        cls,
        payload: Any,
        name: Optional[str] = None,
        injector: Any = NULL_INJECTOR,
        **fault_ctx: Any,
    ) -> "SnapshotSlab":
        """Serialize ``payload`` into a fresh committed segment.

        ``injector`` visits the ``slab.publish`` point: ``latency`` /
        ``transient`` / ``crash`` faults fire before the segment is created
        (nothing to clean up); a ``torn_write`` fault zeroes the tail of the
        body and skips the header commit, then raises :class:`TornSlabError`
        carrying the partial segment — exactly the wreckage a real crash
        mid-publish leaves behind.
        """
        if _shm is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        buffer = io.BytesIO()
        pickler = _SlabPickler(buffer)
        pickler.dump(payload)
        pickled = buffer.getvalue()
        region_start = _align(_HEADER_SIZE + len(pickled))
        total = region_start + max(pickler.cursor, _ALIGN)
        if name is None:
            name = f"{SLAB_PREFIX}_{os.getpid()}_{next(_name_counter)}"
        injector.fire("slab.publish", slab=name, **fault_ctx)
        with _untracked():
            segment = _shm.SharedMemory(name=name, create=True, size=total)
        buf = segment.buf
        for offset, array in pickler.arrays:
            if array.nbytes == 0:
                continue
            dest = np.ndarray(
                array.shape, array.dtype, buffer=buf, offset=region_start + offset
            )
            dest[...] = array
        buf[_HEADER_SIZE : _HEADER_SIZE + len(pickled)] = pickled
        crc = zlib.crc32(buf[_HEADER_SIZE:total])
        slab = cls(segment, name, payload, total, len(pickled), pickler.cursor)
        fraction = injector.truncate_fraction("slab.publish", slab=name, **fault_ctx)
        if fraction is not None:
            survived = _HEADER_SIZE + int((total - _HEADER_SIZE) * fraction)
            buf[survived:total] = bytes(total - survived)
            raise TornSlabError(
                f"slab {name!r} publish torn at {survived}/{total} bytes", slab
            )
        _HEADER.pack_into(
            buf, 0, _MAGIC, _FORMAT_VERSION, crc, len(pickled), total
        )
        return slab

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, name: str) -> "SnapshotSlab":
        """Map an existing segment and reconstruct its payload (zero-copy).

        Raises ``FileNotFoundError`` if the name does not exist and
        :class:`SlabFormatError` if the segment is present but uncommitted
        or corrupt (torn publish, CRC mismatch) — the caller treats both as
        "generation not available, keep the old one".
        """
        if _shm is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        with _untracked():
            segment = _shm.SharedMemory(name=name, create=False)
        buf = segment.buf
        try:
            if len(buf) < _HEADER_SIZE:
                raise SlabFormatError(f"slab {name!r}: segment shorter than header")
            magic, version, crc, pickle_len, total = _HEADER.unpack_from(buf, 0)
            if magic != _MAGIC:
                raise SlabFormatError(f"slab {name!r}: uncommitted or foreign segment")
            if version != _FORMAT_VERSION:
                raise SlabFormatError(f"slab {name!r}: format version {version}")
            if total > len(buf) or pickle_len > total:
                raise SlabFormatError(f"slab {name!r}: header lengths exceed segment")
            if zlib.crc32(buf[_HEADER_SIZE:total]) != crc:
                raise SlabFormatError(f"slab {name!r}: body CRC mismatch")
        except SlabFormatError:
            segment.close()
            raise
        region_start = _align(_HEADER_SIZE + pickle_len)
        pickled = io.BytesIO(bytes(buf[_HEADER_SIZE : _HEADER_SIZE + pickle_len]))
        payload = _SlabUnpickler(pickled, buf, region_start).load()
        return cls(
            segment, name, payload, total, pickle_len, total - region_start
        )

    @staticmethod
    def exists(name: str) -> bool:
        """Whether a segment with ``name`` currently exists (any state)."""
        if _shm is None:
            return False
        try:
            with _untracked():
                segment = _shm.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            return False
        segment.close()
        return True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap this process's view.

        WARNING: numpy views over the segment do **not** pin the mapping —
        ``SharedMemory.close`` unmaps under them and any later access is a
        segfault.  Only close once nothing reachable references the
        payload's arrays (readers that swap generations must retain the
        old handle instead; see ``_WorkerSystem.handle_swap``)."""
        try:
            self._segment.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Remove the name; pages persist until every mapping closes."""
        try:
            with _untracked():
                self._segment.unlink()
        except FileNotFoundError:
            pass

    def destroy(self) -> None:
        """Unlink + close: the writer-side end of a generation's life."""
        self.unlink()
        self.close()

    def describe(self) -> Dict[str, int]:
        """Memory accounting for dashboards and the fleet runbook."""
        return {
            "nbytes": self.nbytes,
            "pickle_bytes": self.pickle_bytes,
            "array_bytes": self.array_bytes,
        }


def shared_memory_available() -> bool:
    """Whether POSIX shared memory actually works here (not just imports)."""
    if _shm is None:
        return False
    try:
        with _untracked():
            probe = _shm.SharedMemory(create=True, size=_ALIGN)
    except Exception:
        return False
    try:
        with _untracked():
            probe.unlink()
    finally:
        probe.close()
    return True


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def sweep_orphan_slabs(
    exclude: Iterable[str] = (),
    events: Any = None,
    clock: Optional[Callable[[], float]] = None,
) -> List[str]:
    """Unlink stale ``repro_slab_*`` segments left by a crashed supervisor.

    A segment is an orphan when its embedded creator pid no longer runs (or
    it is unparseable), and it is not in ``exclude`` (the caller's own live
    generations).  Segments owned by *other live* processes are left alone —
    two supervisors on one host do not reap each other.  Each reclaimed
    segment records a ``state_recovered`` event on ``events`` (satellite of
    the same recovery contract the registry and click-log honor at startup).
    """
    base = "/dev/shm"
    if not os.path.isdir(base):  # non-POSIX or exotic mount: nothing to sweep
        return []
    excluded = set(exclude)
    removed: List[str] = []
    for entry in sorted(os.listdir(base)):
        if not entry.startswith(SLAB_PREFIX + "_") or entry in excluded:
            continue
        parts = entry.split("_")
        pid = int(parts[2]) if len(parts) >= 3 and parts[2].isdigit() else None
        if pid is not None and pid != os.getpid() and _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(base, entry))
        except OSError:
            continue
        removed.append(entry)
        if events is not None:
            now = clock() if clock is not None else float(len(removed))
            events.record(
                "state_recovered",
                now,
                component="slab",
                segment=entry,
                source="orphan_sweep",
            )
    return removed
