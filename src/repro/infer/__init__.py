"""``repro.infer`` — the compiled inference path for the serving fleet.

The training stack (:mod:`repro.nn`) builds an autodiff graph per op; that
is exactly the wrong cost model for serving, where the same forward runs
millions of times on identical batch geometry.  This package separates the
two concerns the way deployed ranking systems do (§III-F): ``compile_model``
freezes a trained model into an :class:`InferencePlan` — a flat list of
fused NumPy kernels over packed contiguous float32 weights, executing in a
preallocated shape-keyed :class:`BufferArena` with **zero steady-state
allocations** — and the serving stack (:mod:`repro.serving`) executes plans
instead of eager forwards.

The candidate-independent gate subgraph is compiled as its own plan, so the
session-gate cache (§III-F1) feeds the score plan directly.  A float64
parity mode replays the exact eager op order for bitwise verification.
"""

from repro.infer.compiler import (
    CompiledModel,
    CompileError,
    compile_model,
    float64_twin,
    register_compiler,
)
from repro.infer.kernels import PackedExperts, PackedMLP, sigmoid_
from repro.infer.plan import BufferArena, InferencePlan, PlanStep
from repro.infer.slabs import (
    SlabFormatError,
    SnapshotSlab,
    TornSlabError,
    shared_memory_available,
    sweep_orphan_slabs,
)
from repro.obs.profiler import PlanProfiler

__all__ = [
    "PlanProfiler",
    "CompiledModel",
    "CompileError",
    "compile_model",
    "float64_twin",
    "register_compiler",
    "PackedExperts",
    "PackedMLP",
    "sigmoid_",
    "BufferArena",
    "InferencePlan",
    "PlanStep",
    "SlabFormatError",
    "SnapshotSlab",
    "TornSlabError",
    "shared_memory_available",
    "sweep_orphan_slabs",
]
