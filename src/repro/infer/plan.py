"""Inference plans: flat kernel programs with a reusable buffer arena.

An :class:`InferencePlan` is what :func:`repro.infer.compiler.compile_model`
produces from a model's forward pass: a **topologically ordered, flat list of
fused kernel steps** operating on raw ``np.ndarray``s.  There is no graph
walk, no operator dispatch, and no autodiff bookkeeping at execution time —
each step is a plain Python callable closed over packed weights.

All intermediate storage is leased from a :class:`BufferArena`: a dictionary
keyed by ``(step, slot, shape)`` whose buffers are allocated on first use and
reused verbatim on every later call with the same shapes.  Serving traffic
re-scores the same batch geometry over and over (``candidates_per_query``
rows per session, micro-batches of the configured flush size), so after a
one-call warmup the plan executes with **zero array allocations** — the
arena's hit/miss counters make that measurable (``tests/infer/test_plan.py``
asserts it).

Thread-safety: a plan owns mutable buffers, so one plan must not be executed
concurrently from multiple threads — give each worker its own compiled plan
(:class:`~repro.serving.cluster.ShardedCluster` compiles per shard), exactly
as each training process owns its own activations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["BufferArena", "PlanStep", "InferencePlan"]


class BufferArena:
    """Shape-keyed pool of preallocated scratch buffers.

    ``lease(step, slot, shape)`` returns a contiguous ``np.empty`` buffer of
    the plan dtype, cached under ``(step, slot, shape)``.  Buffer contents
    are *not* zeroed between calls — every kernel fully overwrites its
    output, which the parity tests verify by running the same plan twice.
    """

    __slots__ = ("dtype", "_buffers", "hits", "misses")

    def __init__(self, dtype: np.dtype = np.float32) -> None:
        self.dtype = np.dtype(dtype)
        self._buffers: Dict[Tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def lease(
        self, step: str, slot: str, shape: Tuple[int, ...], dtype: Optional[np.dtype] = None
    ) -> np.ndarray:
        wanted = self.dtype if dtype is None else np.dtype(dtype)
        key = (step, slot, shape, wanted)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=wanted)
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    def binder(self, step: str, dtype: Optional[np.dtype] = None) -> Callable:
        """A ``lease(slot, shape)`` closure pinned to one step name."""
        return lambda slot, shape: self.lease(step, slot, shape, dtype=dtype)

    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the arena (the plan's whole working set)."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


@dataclass(frozen=True)
class PlanStep:
    """One fused kernel in the flat program.

    ``fn(ctx)`` reads earlier results from the ``ctx`` dict (plus the bound
    batch under ``ctx["batch"]``) and writes its own outputs back into it;
    ``reads``/``writes`` document dataflow for introspection and tests.
    """

    name: str
    kind: str
    fn: Callable[[dict], None]
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    #: Estimated multiply-accumulate FLOPs **per output row**, stamped by
    #: the compiler from the packed weight shapes (the §III-F cost-model
    #: arithmetic).  0 for steps whose cost is not GEMM-shaped (gathers,
    #: concats, pools); consumed by :class:`~repro.obs.profiler.PlanProfiler`.
    flops: int = 0

    def __repr__(self) -> str:  # keep plan dumps compact
        return f"PlanStep({self.name!r}, {self.kind})"


@dataclass
class InferencePlan:
    """A compiled forward pass: ordered steps + the arena they execute in."""

    name: str
    steps: List[PlanStep]
    output: str
    arena: BufferArena
    #: Batch keys the plan reads; binding validates they are present.
    inputs: Tuple[str, ...] = ()
    calls: int = 0
    #: Optional :class:`~repro.obs.profiler.PlanProfiler` (duck-typed:
    #: ``record_step(plan_name, step, seconds, ctx)``).  ``None`` keeps the
    #: unconditional fast loop — attaching is strictly opt-in.
    profiler: Optional[object] = field(default=None, repr=False, compare=False)
    #: Optional per-execution hook ``(step, seconds) -> None``; the serving
    #: tracer installs one transiently to attach per-kernel spans to sampled
    #: traces without the allocation cost of a persistent profiler.
    step_hook: Optional[Callable[[PlanStep, float], None]] = field(
        default=None, repr=False, compare=False
    )
    _ctx: dict = field(default_factory=dict, repr=False)

    def run(self, batch: Dict[str, np.ndarray], **bound) -> np.ndarray:
        """Execute every step and return the output buffer.

        The returned array is **owned by the arena** and is only valid until
        the next ``run`` on this plan — serving consumes it immediately;
        API-level callers go through :meth:`repro.infer.compiler.
        CompiledModel.predict_proba`, which copies.  ``bound`` injects extra
        ctx entries (e.g. a precomputed ``gate`` matrix).
        """
        missing = [key for key in self.inputs if key not in batch]
        if missing:
            raise KeyError(f"plan {self.name!r} missing batch inputs {missing}")
        ctx = self._ctx
        ctx.clear()
        ctx["batch"] = batch
        ctx.update(bound)
        profiler = self.profiler
        hook = self.step_hook
        if profiler is None and hook is None:
            for step in self.steps:
                step.fn(ctx)
        else:
            clock = time.perf_counter
            for step in self.steps:
                begin = clock()
                step.fn(ctx)
                elapsed = clock() - begin
                if profiler is not None:
                    profiler.record_step(self.name, step, elapsed, ctx)
                if hook is not None:
                    hook(step, elapsed)
        self.calls += 1
        return ctx[self.output]

    def profile_report(self) -> str:
        """The attached profiler's (step, op, shape, calls, total ms,
        % of plan) table for this plan; raises without a profiler."""
        if self.profiler is None:
            raise RuntimeError(
                f"plan {self.name!r} has no profiler attached; "
                "set plan.profiler = PlanProfiler() (or CompiledModel."
                "attach_profiler) before running it"
            )
        return self.profiler.report_table(
            plan=self.name, title=f"plan {self.name!r} kernel profile"
        )

    def describe(self) -> List[str]:
        """Human-readable program listing (used by tests and ``__repr__``)."""
        return [f"{step.kind:<10} {step.name}" for step in self.steps]

    @property
    def num_steps(self) -> int:
        return len(self.steps)
