"""The inference compiler: eager model → flat fused :class:`InferencePlan`.

``compile_model`` traces a model's forward structure once, packs every weight
into contiguous arrays of the plan dtype, and emits two plans:

* a **gate plan** — the candidate-independent subgraph (§III-F1).  In search
  mode the gate reads only the behaviour sequence and the query, so the
  serving session cache can run this plan once per session and feed the
  result straight back through ``gate_override``;
* a **score plan** — input network + experts + the gate-weighted mixture,
  taking the gate as an input (either the gate plan's output or a cached
  override).

Differences from the eager ``Tensor`` forward, and why they are safe:

* weights are packed **once** (contiguous, float32 by default) instead of
  being re-read through ``Parameter`` wrappers;
* the attention/gate units' shared ``[h ‖ h⊙key ‖ key]`` input is built once
  per plan instead of twice (bitwise-identical values);
* the K expert heads run as one packed GEMM per layer
  (:class:`~repro.infer.kernels.PackedExperts`) instead of K small matmuls;
* every intermediate lives in a :class:`~repro.infer.plan.BufferArena`
  buffer, so steady-state execution allocates nothing.

``dtype=np.float64`` selects **parity mode**: fusions that could change
floating-point evaluation order (the packed expert GEMM) are disabled and the
plan replays the exact eager op order, making compiled scores bitwise equal
to a float64 eager forward — the compiler's correctness oracle
(``tests/infer/test_parity.py``).

New model families register themselves with :func:`register_compiler`;
models nobody registered raise :class:`CompileError`, which the serving
stack treats as "fall back to the eager forward".
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.infer.kernels import (
    PackedExperts,
    PackedMLP,
    gather_rows,
    masked_pool,
    pairwise_concat,
    sigmoid_,
    softmax_,
    sparsify_top_k_,
)
from repro.infer.plan import BufferArena, InferencePlan, PlanStep

__all__ = [
    "CompileError",
    "CompiledModel",
    "compile_model",
    "register_compiler",
    "float64_twin",
]


class CompileError(RuntimeError):
    """Raised when no compiler is registered for a model's type."""


def _pack_flops(pack: PackedMLP) -> int:
    """Per-row MAC count of a packed MLP, via the §III-F cost model's
    arithmetic (``repro.serving.cost.mlp_flops`` over the packed shapes) —
    the number the :class:`~repro.obs.profiler.PlanProfiler` aggregates.
    """
    # Lazy import: repro.serving imports repro.infer at package-init time,
    # so a module-level import here would be order-sensitive.
    from repro.serving.cost import mlp_flops

    return mlp_flops(pack.in_features, [weight.shape[1] for weight, _, _ in pack.layers])


_COMPILERS: Dict[type, Callable] = {}


def register_compiler(model_cls: type) -> Callable:
    """Class decorator-style registration: ``fn(model, dtype) -> CompiledModel``."""

    def decorator(fn: Callable) -> Callable:
        _COMPILERS[model_cls] = fn
        return fn

    return decorator


def compile_model(model, dtype=np.float32) -> "CompiledModel":
    """Compile ``model``'s forward into an allocation-free inference plan.

    Dispatches over the model's MRO so subclasses (e.g. the sparse-gate
    extension) can either reuse or override their parent's compiler.
    """
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise CompileError(f"unsupported plan dtype {dtype}")
    for klass in type(model).__mro__:
        fn = _COMPILERS.get(klass)
        if fn is not None:
            return fn(model, dtype)
    raise CompileError(
        f"no inference compiler registered for {type(model).__name__}; "
        "serving falls back to the eager forward"
    )


def float64_twin(model):
    """A deep copy of ``model`` with every parameter upcast to float64.

    The parity harness runs this twin eagerly and demands bitwise equality
    with the float64 compiled plan — float32→float64 casts are exact, so the
    twin and the plan share identical weights.
    """
    twin = copy.deepcopy(model)
    for param in twin.parameters():
        param.data = param.data.astype(np.float64)
    return twin


# ----------------------------------------------------------------------
# shared step builders
# ----------------------------------------------------------------------
def _mask32(ctx: dict, arena: BufferArena, step: str) -> np.ndarray:
    """The behaviour mask as float32, mirroring the eager ``np.asarray``
    coercion (no copy when the batch already carries float32)."""
    mask = ctx["batch"]["behavior_mask"]
    if mask.dtype == np.float32:
        return mask
    buf = arena.lease(step, "mask32", mask.shape, dtype=np.float32)
    buf[...] = mask
    return buf


def _embed_concat_step(
    name: str,
    arena: BufferArena,
    tables: List[Tuple[np.ndarray, str]],
    dense_key: Optional[str],
    dense_dim: int,
    out_key: str,
) -> PlanStep:
    """Fused gather+concat: id embeddings and dense profile features written
    straight into one representation buffer (the eager path's ``Embedding``
    lookups plus ``concat``)."""
    widths = [table.shape[1] for table, _ in tables]
    total = sum(widths) + dense_dim

    def fn(ctx: dict) -> None:
        batch = ctx["batch"]
        lead = batch[tables[0][1]].shape  # (B,) or (B, M)
        out = arena.lease(name, "out", lead + (total,))
        offset = 0
        for (table, key), width in zip(tables, widths):
            gather_rows(table, batch[key], out[..., offset : offset + width])
            offset += width
        if dense_key is not None:
            out[..., offset:] = batch[dense_key]
        ctx[out_key] = out

    reads = tuple(key for _, key in tables) + ((dense_key,) if dense_key else ())
    return PlanStep(name, "embed", fn, reads=reads, writes=(out_key,))


def _mlp_step(
    name: str,
    arena: BufferArena,
    pack: PackedMLP,
    in_key: str,
    out_key: str,
) -> PlanStep:
    """Fused matmul+bias+activation chain; 3-D inputs run as one flat GEMM."""

    binder = arena.binder(name)

    def fn(ctx: dict) -> None:
        x = ctx[in_key]
        shape = x.shape
        flat = x.reshape(-1, shape[-1]) if x.ndim != 2 else x
        out = pack.run(flat, binder)
        if x.ndim != 2:
            out = out.reshape(shape[:-1] + (pack.out_features,))
        ctx[out_key] = out

    return PlanStep(name, "mlp", fn, reads=(in_key,), writes=(out_key,), flops=_pack_flops(pack))


def _batch_mlp_step(name: str, arena: BufferArena, pack: PackedMLP, batch_key: str, out_key: str) -> PlanStep:
    """MLP whose input comes directly from a batch array (dense features)."""

    binder = arena.binder(name)

    def fn(ctx: dict) -> None:
        ctx[out_key] = pack.run(ctx["batch"][batch_key], binder)

    return PlanStep(
        name, "mlp", fn, reads=(batch_key,), writes=(out_key,), flops=_pack_flops(pack)
    )


def _pairwise_step(name: str, arena: BufferArena, seq_key: str, key_key: str, out_key: str) -> PlanStep:
    """Attention-unit input ``[h ‖ h⊙key ‖ key]`` — built once and shared by
    the gate and activation units (the eager path materializes it twice)."""

    def fn(ctx: dict) -> None:
        h_seq = ctx[seq_key]
        batch, seq_len, hidden = h_seq.shape
        out = arena.lease(name, "pw", (batch, seq_len, 3 * hidden))
        pairwise_concat(h_seq, ctx[key_key], out)
        ctx[out_key] = out

    return PlanStep(name, "attention", fn, reads=(seq_key, key_key), writes=(out_key,))


def _unit_scores_step(
    name: str,
    arena: BufferArena,
    pack: PackedMLP,
    pairwise_key: str,
    out_key: str,
    squeeze: bool,
) -> PlanStep:
    """Activation/gate-unit MLP over the pairwise input, masked at padding."""

    binder = arena.binder(name)

    def fn(ctx: dict) -> None:
        pw = ctx[pairwise_key]
        batch, seq_len, width = pw.shape
        out = pack.run(pw.reshape(batch * seq_len, width), binder)
        mask = _mask32(ctx, arena, name)
        if squeeze:
            scores = out.reshape(batch, seq_len)
            np.multiply(scores, mask, out=scores)
        else:
            scores = out.reshape(batch, seq_len, pack.out_features)
            np.multiply(scores, mask[:, :, None], out=scores)
        ctx[out_key] = scores

    return PlanStep(
        name,
        "attention",
        fn,
        reads=(pairwise_key, "behavior_mask"),
        writes=(out_key,),
        flops=_pack_flops(pack),
    )


def _concat_step(
    name: str, arena: BufferArena, part_keys: List[str], widths: List[int], out_key: str
) -> PlanStep:
    total = sum(widths)

    def fn(ctx: dict) -> None:
        first = ctx[part_keys[0]]
        out = arena.lease(name, "out", (first.shape[0], total))
        offset = 0
        for key, width in zip(part_keys, widths):
            out[:, offset : offset + width] = ctx[key]
            offset += width
        ctx[out_key] = out

    return PlanStep(name, "concat", fn, reads=tuple(part_keys), writes=(out_key,))


# ----------------------------------------------------------------------
# AW-MoE compiler
# ----------------------------------------------------------------------
def _pack_embedder(embedder, dtype) -> Dict[str, np.ndarray]:
    # np.array (not asarray): plans are weight snapshots, never aliases.
    return {
        "item": np.array(embedder.item.weight.detach_numpy(), dtype=dtype, order="C"),
        "category": np.array(embedder.category.weight.detach_numpy(), dtype=dtype, order="C"),
        "query": np.array(embedder.query.weight.detach_numpy(), dtype=dtype, order="C"),
    }


def _build_score_plan(model, dtype: np.dtype, parity: bool) -> InferencePlan:
    """Input network + experts + gate-weighted mix (reads ctx['gate'])."""
    arena = BufferArena(dtype)
    net = model.input_network
    tables = _pack_embedder(model.embedder, dtype)
    dense_dim = int(model.embedder.item_repr_dim - tables["item"].shape[1] - tables["category"].shape[1])
    hidden = net.hidden_dim

    steps: List[PlanStep] = [
        _embed_concat_step(
            "input.behavior_repr",
            arena,
            [(tables["item"], "behavior_items"), (tables["category"], "behavior_categories")],
            "behavior_dense",
            dense_dim,
            "behavior_repr",
        ),
        _embed_concat_step(
            "input.target_repr",
            arena,
            [(tables["item"], "target_item"), (tables["category"], "target_category")],
            "target_dense",
            dense_dim,
            "target_repr",
        ),
    ]
    behavior_pack = PackedMLP.from_module(net.behavior_mlp, dtype)
    steps.append(_mlp_step("input.h_target", arena, behavior_pack, "target_repr", "h_target"))
    steps.append(_mlp_step("input.h_behavior", arena, behavior_pack, "behavior_repr", "h_behavior"))

    if net.pooling != "attention":  # pragma: no cover - AW-MoE always pools by attention
        raise CompileError(f"unsupported input pooling {net.pooling!r}")
    att_pack = PackedMLP.from_module(net.attention.mlp, dtype)
    steps.append(_pairwise_step("input.att_pairwise", arena, "h_behavior", "h_target", "att_pw"))
    steps.append(_unit_scores_step("input.att_weights", arena, att_pack, "att_pw", "att_weights", squeeze=True))

    def pool_fn(ctx: dict) -> None:
        h_behavior = ctx["h_behavior"]
        out = arena.lease("input.v_user", "out", (h_behavior.shape[0], hidden))
        scratch = arena.lease("input.v_user", "weighted", h_behavior.shape)
        masked_pool(h_behavior, ctx["att_weights"], scratch, out)
        ctx["v_user"] = out

    steps.append(PlanStep("input.v_user", "pool", pool_fn, reads=("h_behavior", "att_weights"), writes=("v_user",)))

    other_pack = PackedMLP.from_module(net.other_mlp, dtype)
    steps.append(_batch_mlp_step("input.h_other", arena, other_pack, "other_features", "h_other"))

    part_keys = ["v_user", "h_target"]
    if net.query_mlp is not None:
        query_pack = PackedMLP.from_module(net.query_mlp, dtype)
        steps.append(
            _embed_concat_step(
                "input.query_repr", arena, [(tables["query"], "query")], None, 0, "query_repr"
            )
        )
        steps.append(_mlp_step("input.h_query", arena, query_pack, "query_repr", "h_query"))
        part_keys.append("h_query")
    part_keys.append("h_other")
    steps.append(
        _concat_step("input.v_imp", arena, part_keys, [hidden] * len(part_keys), "v_imp")
    )

    num_experts = model.experts.num_experts
    if parity:
        expert_packs = [
            (PackedMLP.from_module(e.mlp, dtype), arena.binder(f"experts.k{k}"))
            for k, e in enumerate(model.experts._experts)
        ]

        def experts_fn(ctx: dict) -> None:
            v_imp = ctx["v_imp"]
            scores = arena.lease("experts", "scores", (v_imp.shape[0], num_experts))
            for k, (pack, binder) in enumerate(expert_packs):
                out = pack.run(v_imp, binder)
                scores[:, k] = out[:, 0]
            ctx["expert_scores"] = scores

        experts_flops = sum(_pack_flops(pack) for pack, _ in expert_packs)
        steps.append(
            PlanStep(
                "experts",
                "experts",
                experts_fn,
                reads=("v_imp",),
                writes=("expert_scores",),
                flops=experts_flops,
            )
        )
    else:
        packed = PackedExperts(model.experts._experts, dtype)

        experts_binder = arena.binder("experts")

        def experts_fn(ctx: dict) -> None:
            ctx["expert_scores"] = packed.run(ctx["v_imp"], experts_binder)

        # All K experts share one architecture; the fused GEMMs perform the
        # same MACs as K independent forwards.
        experts_flops = num_experts * sum(
            2 * weight.shape[0] * weight.shape[1] for weight in packed.widths
        )
        steps.append(
            PlanStep(
                "experts",
                "experts",
                experts_fn,
                reads=("v_imp",),
                writes=("expert_scores",),
                flops=experts_flops,
            )
        )

    def mix_fn(ctx: dict) -> None:
        scores = ctx["expert_scores"]
        weighted = arena.lease("mix", "weighted", scores.shape)
        np.multiply(ctx["gate"], scores, out=weighted)
        logits = arena.lease("mix", "logits", (scores.shape[0],))
        weighted.sum(axis=1, out=logits)
        ctx["logits"] = logits

    steps.append(PlanStep("mix", "mix", mix_fn, reads=("expert_scores", "gate"), writes=("logits",)))

    inputs = ["behavior_items", "behavior_categories", "behavior_dense", "behavior_mask",
              "target_item", "target_category", "target_dense", "other_features"]
    if net.query_mlp is not None:
        inputs.append("query")
    return InferencePlan("score", steps, "logits", arena, tuple(inputs))


def _build_gate_plan(model, dtype: np.dtype, top_k: Optional[int] = None) -> InferencePlan:
    """The candidate-independent gate subgraph ``g`` (Eq. 6–8).

    In search mode this plan never touches the target item, which is what
    lets the session cache evaluate it once per (user, query) and reuse the
    vector for every candidate — the §III-F1 deployed optimization.
    """
    arena = BufferArena(dtype)
    gate = model.gate
    config = model.config
    tables = _pack_embedder(model.embedder, dtype)
    dense_dim = int(model.embedder.item_repr_dim - tables["item"].shape[1] - tables["category"].shape[1])
    hidden = gate.hidden_dim

    steps: List[PlanStep] = [
        _embed_concat_step(
            "gate.behavior_repr",
            arena,
            [(tables["item"], "behavior_items"), (tables["category"], "behavior_categories")],
            "behavior_dense",
            dense_dim,
            "behavior_repr",
        ),
    ]
    behavior_pack = PackedMLP.from_module(gate.behavior_mlp, dtype)
    steps.append(_mlp_step("gate.h_behavior", arena, behavior_pack, "behavior_repr", "h_behavior"))

    if config.task == "search":
        steps.append(
            _embed_concat_step("gate.key_repr", arena, [(tables["query"], "query")], None, 0, "key_repr")
        )
        key_inputs = ["query"]
    else:
        steps.append(
            _embed_concat_step(
                "gate.key_repr",
                arena,
                [(tables["item"], "target_item"), (tables["category"], "target_category")],
                "target_dense",
                dense_dim,
                "key_repr",
            )
        )
        key_inputs = ["target_item", "target_category", "target_dense"]
    key_pack = PackedMLP.from_module(gate.key_mlp, dtype)
    steps.append(_mlp_step("gate.h_key", arena, key_pack, "key_repr", "h_key"))

    def counts_fn(ctx: dict) -> None:
        mask = _mask32(ctx, arena, "gate.counts")
        counts = arena.lease("gate.counts", "counts", (mask.shape[0], 1), dtype=np.float32)
        mask.sum(axis=1, keepdims=True, out=counts)
        np.maximum(counts, 1.0, out=counts)
        inv = arena.lease("gate.counts", "inv", (mask.shape[0], 1), dtype=np.float32)
        np.divide(1.0, counts, out=inv)
        ctx["inv_counts"] = inv

    steps.append(PlanStep("gate.counts", "pool", counts_fn, reads=("behavior_mask",), writes=("inv_counts",)))

    steps.append(_pairwise_step("gate.pairwise", arena, "h_behavior", "h_key", "gate_pw"))
    num_experts = int(config.num_experts)

    if gate.gate_unit is not None:
        gu_pack = PackedMLP.from_module(gate.gate_unit.mlp, dtype)
        steps.append(
            _unit_scores_step("gate.item_scores", arena, gu_pack, "gate_pw", "item_scores", squeeze=False)
        )
        if gate.activation_unit is not None:
            au_pack = PackedMLP.from_module(gate.activation_unit.mlp, dtype)
            steps.append(
                _unit_scores_step("gate.att_weights", arena, au_pack, "gate_pw", "att_weights", squeeze=True)
            )

            def pool_fn(ctx: dict) -> None:
                item_scores = ctx["item_scores"]
                tmp = arena.lease("gate.pool", "weighted", item_scores.shape)
                np.multiply(item_scores, ctx["att_weights"][:, :, None], out=tmp)
                out = arena.lease("gate.pool", "gate", (item_scores.shape[0], num_experts))
                tmp.sum(axis=1, out=out)
                np.multiply(out, ctx["inv_counts"], out=out)
                ctx["gate"] = out

            reads = ("item_scores", "att_weights", "inv_counts")
        else:

            def pool_fn(ctx: dict) -> None:
                item_scores = ctx["item_scores"]
                out = arena.lease("gate.pool", "gate", (item_scores.shape[0], num_experts))
                item_scores.sum(axis=1, out=out)
                np.multiply(out, ctx["inv_counts"], out=out)
                ctx["gate"] = out

            reads = ("item_scores", "inv_counts")
        steps.append(PlanStep("gate.pool", "pool", pool_fn, reads=reads, writes=("gate",)))
    else:
        # Ablation variants (Table VI "Base"/"Base+AU"): pooled behaviour ‖ key -> FFN.
        pooled_pack = PackedMLP.from_module(gate.pooled_mlp, dtype)
        if gate.activation_unit is not None:
            au_pack = PackedMLP.from_module(gate.activation_unit.mlp, dtype)
            steps.append(
                _unit_scores_step("gate.att_weights", arena, au_pack, "gate_pw", "att_weights", squeeze=True)
            )

            def pooled_fn(ctx: dict) -> None:
                h_behavior = ctx["h_behavior"]
                out = arena.lease("gate.pooled", "out", (h_behavior.shape[0], hidden))
                scratch = arena.lease("gate.pooled", "weighted", h_behavior.shape)
                masked_pool(h_behavior, ctx["att_weights"], scratch, out)
                np.multiply(out, ctx["inv_counts"], out=out)
                ctx["pooled"] = out

            reads = ("h_behavior", "att_weights", "inv_counts")
        else:

            def pooled_fn(ctx: dict) -> None:
                h_behavior = ctx["h_behavior"]
                mask = _mask32(ctx, arena, "gate.pooled")
                out = arena.lease("gate.pooled", "out", (h_behavior.shape[0], hidden))
                scratch = arena.lease("gate.pooled", "weighted", h_behavior.shape)
                masked_pool(h_behavior, mask, scratch, out)
                np.multiply(out, ctx["inv_counts"], out=out)
                ctx["pooled"] = out

            reads = ("h_behavior", "behavior_mask", "inv_counts")
        steps.append(PlanStep("gate.pooled", "pool", pooled_fn, reads=reads, writes=("pooled",)))
        steps.append(_concat_step("gate.pooled_cat", arena, ["pooled", "h_key"], [hidden, hidden], "pooled_cat"))
        steps.append(_mlp_step("gate.pooled_mlp", arena, pooled_pack, "pooled_cat", "gate"))

    if gate.bias is not None:
        bias = np.array(gate.bias.detach_numpy(), dtype=dtype, order="C")

        def bias_fn(ctx: dict) -> None:
            ctx["gate"] += bias

        steps.append(PlanStep("gate.bias", "bias", bias_fn, reads=("gate",), writes=("gate",)))

    if config.normalize_gate:

        def softmax_fn(ctx: dict) -> None:
            out = ctx["gate"]
            scratch_max = arena.lease("gate.softmax", "max", (out.shape[0], 1))
            scratch_sum = arena.lease("gate.softmax", "sum", (out.shape[0], 1))
            softmax_(out, scratch_max, scratch_sum)

        steps.append(PlanStep("gate.softmax", "softmax", softmax_fn, reads=("gate",), writes=("gate",)))

    if top_k is not None:

        def sparsify_fn(ctx: dict) -> None:
            out = ctx["gate"]
            scratch_sorted = arena.lease("gate.topk", "sorted", out.shape)
            scratch_drop = arena.lease("gate.topk", "drop", out.shape, dtype=np.bool_)
            sparsify_top_k_(out, top_k, scratch_sorted, scratch_drop)

        steps.append(PlanStep("gate.topk", "sparsify", sparsify_fn, reads=("gate",), writes=("gate",)))

    inputs = ["behavior_items", "behavior_categories", "behavior_dense", "behavior_mask"] + key_inputs
    return InferencePlan("gate", steps, "gate", arena, tuple(inputs))


class CompiledModel:
    """A model frozen for serving: gate plan + score plan + packed weights.

    Mirrors the :class:`~repro.core.ranking_model.RankingModel` inference
    surface (``predict_logits`` / ``predict_proba`` / ``serving_gate`` /
    ``gate_is_candidate_independent``) so the serving stack and the canary
    gate can swap it in wherever an eager model scored before.
    """

    def __init__(
        self,
        source,
        gate_plan: InferencePlan,
        score_plan: InferencePlan,
        dtype: np.dtype,
    ) -> None:
        self.source = source
        self.gate_plan = gate_plan
        self.score_plan = score_plan
        self.dtype = np.dtype(dtype)
        #: Uniform-session gate dedup (§III-F1): when every row of a batch
        #: carries the same behaviour sequence and query — the shape of a
        #: single-query candidate batch — the candidate-independent gate
        #: plan runs on one row and is broadcast, instead of redundantly
        #: scoring B identical rows.  Disabled in float64 parity mode so
        #: bitwise comparisons see the exact eager op order.
        self.uniform_session_dedup = self.dtype == np.dtype(np.float32)

    @property
    def gate_is_candidate_independent(self) -> bool:
        return bool(getattr(self.source, "gate_is_candidate_independent", False))

    # -- scoring --------------------------------------------------------
    def _uniform_session(self, batch) -> bool:
        """Whether every row shares the gate plan's inputs (one session)."""
        for key in self.gate_plan.inputs:
            array = batch[key]
            if array.shape[0] > 1 and not (array[1:] == array[:1]).all():
                return False
        return True

    def _resolve_gate(self, batch, gate_override) -> np.ndarray:
        if gate_override is not None:
            # Cached session gates arrive as float32 exactly like the eager
            # ``AWMoE._coerce_gate``; mixed-dtype multiply promotes identically.
            return np.asarray(gate_override, dtype=np.float32)
        if self.uniform_session_dedup and self.gate_is_candidate_independent:
            rows = int(batch[self.gate_plan.inputs[0]].shape[0])
            if rows > 1 and self._uniform_session(batch):
                row = {key: batch[key][:1] for key in self.gate_plan.inputs}
                gate_row = self.gate_plan.run(row)
                tiled = self.gate_plan.arena.lease(
                    "uniform", "tile", (rows, gate_row.shape[1])
                )
                tiled[...] = gate_row
                return tiled
        return self.gate_plan.run(batch)

    def predict_logits(self, batch, gate_override=None, copy: bool = True) -> np.ndarray:
        """Raw logits ``Σ_k g_k s_k``.

        ``copy=False`` returns the arena buffer itself, valid only until the
        next call on this plan — an opt-in zero-allocation path for callers
        that consume scores immediately.  The default copies, and every
        stock caller (the serving engine included) keeps it: results may
        outlive the next flush, so the copy is load-bearing.
        """
        gate = self._resolve_gate(batch, gate_override)
        logits = self.score_plan.run(batch, gate=gate)
        return logits.copy() if copy else logits

    def predict_proba(self, batch, gate_override=None, copy: bool = True) -> np.ndarray:
        """Predicted probabilities ``σ(logits)`` (same contract as eager)."""
        logits = self.predict_logits(batch, gate_override=gate_override, copy=False)
        sigmoid_(logits)
        return logits.copy() if copy else logits

    def serving_gate(self, batch) -> np.ndarray:
        """Cache-ready gate matrix ``(B, K)`` — always a fresh copy, because
        the session cache retains it across future plan executions."""
        return self.gate_plan.run(batch).copy()

    # -- profiling ------------------------------------------------------
    def attach_profiler(self, profiler) -> None:
        """Time every kernel of both plans with ``profiler`` (a
        :class:`~repro.obs.profiler.PlanProfiler`); pass ``None`` to detach
        and restore the unconditional fast loop."""
        self.gate_plan.profiler = profiler
        self.score_plan.profiler = profiler

    @property
    def profiler(self):
        return self.score_plan.profiler

    def profile_report(self) -> str:
        """Combined per-kernel table over the gate and score plans."""
        if self.score_plan.profiler is None:
            raise RuntimeError(
                "no profiler attached; call attach_profiler(PlanProfiler()) "
                "before scoring"
            )
        return self.score_plan.profiler.report_table(
            title=f"{type(self.source).__name__} kernel profile"
        )

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Arena and call accounting for benchmarks and tests."""
        return {
            "dtype": str(self.dtype),
            "score": {
                "steps": self.score_plan.num_steps,
                "calls": self.score_plan.calls,
                "arena_buffers": self.score_plan.arena.num_buffers,
                "arena_bytes": self.score_plan.arena.nbytes,
                "arena_hits": self.score_plan.arena.hits,
                "arena_misses": self.score_plan.arena.misses,
            },
            "gate": {
                "steps": self.gate_plan.num_steps,
                "calls": self.gate_plan.calls,
                "arena_buffers": self.gate_plan.arena.num_buffers,
                "arena_bytes": self.gate_plan.arena.nbytes,
                "arena_hits": self.gate_plan.arena.hits,
                "arena_misses": self.gate_plan.arena.misses,
            },
        }

    def __repr__(self) -> str:
        return (
            f"CompiledModel({type(self.source).__name__}, dtype={self.dtype}, "
            f"score_steps={self.score_plan.num_steps}, gate_steps={self.gate_plan.num_steps})"
        )


def _compile_awmoe(model, dtype: np.dtype) -> CompiledModel:
    parity = dtype == np.dtype(np.float64)
    top_k = getattr(model, "top_k", None)
    gate_plan = _build_gate_plan(model, dtype, top_k=top_k)
    score_plan = _build_score_plan(model, dtype, parity)
    return CompiledModel(model, gate_plan, score_plan, dtype)


def _register_builtin_compilers() -> None:
    from repro.core.aw_moe import AWMoE
    from repro.core.extensions.sparse_gate import SparseGatedAWMoE

    _COMPILERS[AWMoE] = _compile_awmoe
    # The sparse extension stores cached gates post-sparsification, so the
    # same compiler applies — ``top_k`` is picked up from the instance.
    _COMPILERS[SparseGatedAWMoE] = _compile_awmoe


_register_builtin_compilers()
