"""Plain-text table rendering used by the benchmark harness.

Each benchmark prints rows in the same layout as the paper's tables so the
reproduction can be compared against the published numbers side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "print_table", "format_float"]


def format_float(value: Optional[float], digits: int = 4) -> str:
    """Format a float like the paper (4 decimals); dashes for missing cells."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells but table has {len(headers)} columns")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> None:
    """Print :func:`format_table` output, surrounded by blank lines."""
    print()
    print(format_table(headers, rows, title=title))
    print()
