"""Minimal structured logging for training runs.

A :class:`RunLog` collects per-step metric dictionaries; the trainer uses it
for loss curves and the tests assert on its contents.  Kept dependency-free on
purpose (the standard ``logging`` module is configured by applications, not
libraries).
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional

__all__ = ["RunLog"]


class RunLog:
    """Append-only record of scalar metrics over training steps."""

    def __init__(self, name: str = "run", echo_every: int = 0, stream=None) -> None:
        self.name = name
        self.echo_every = echo_every
        self.records: List[Dict[str, float]] = []
        self._stream = stream if stream is not None else sys.stderr
        self._started = time.time()

    def log(self, step: int, **metrics: float) -> None:
        """Record metrics for a step, optionally echoing to the stream."""
        record = {"step": float(step)}
        record.update({k: float(v) for k, v in metrics.items()})
        self.records.append(record)
        if self.echo_every and step % self.echo_every == 0:
            elapsed = time.time() - self._started
            parts = " ".join(f"{k}={v:.5f}" for k, v in metrics.items())
            print(f"[{self.name}] step={step} {parts} ({elapsed:.1f}s)", file=self._stream)

    def series(self, key: str) -> List[float]:
        """Return the values logged under ``key``, in order."""
        return [record[key] for record in self.records if key in record]

    def last(self, key: str) -> Optional[float]:
        """Return the most recent value of ``key`` or ``None``."""
        values = self.series(key)
        return values[-1] if values else None

    def __len__(self) -> int:
        return len(self.records)
