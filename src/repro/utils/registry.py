"""A small name → factory registry.

Used to register ranking models by name ("dnn", "din", "category_moe",
"aw_moe", ...) so the benchmark harness and examples can build any compared
model from a string, mirroring how the paper's Tables II–V list them.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

__all__ = ["Registry"]


class Registry:
    """Mapping from string keys to factory callables."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable] = {}

    def register(self, name: str) -> Callable:
        """Decorator registering ``name`` → decorated callable."""
        if name in self._factories:
            raise KeyError(f"{self.kind} {name!r} is already registered")

        def decorator(factory: Callable) -> Callable:
            self._factories[name] = factory
            return factory

        return decorator

    def get(self, name: str) -> Callable:
        """Return the factory for ``name``; raise with suggestions if absent."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories))
            raise KeyError(f"unknown {self.kind} {name!r}; known: {known}")

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))

    def names(self) -> List[str]:
        """Sorted registered names."""
        return sorted(self._factories)
