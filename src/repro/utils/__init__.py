"""Shared utilities: deterministic RNG, registries, run logs, table printing."""

from repro.utils.logging import RunLog
from repro.utils.registry import Registry
from repro.utils.rng import SeedBank, generator
from repro.utils.tables import format_float, format_table, print_table

__all__ = [
    "RunLog",
    "Registry",
    "SeedBank",
    "generator",
    "format_float",
    "format_table",
    "print_table",
]
