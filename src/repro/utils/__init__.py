"""Shared utilities: deterministic RNG, registries, run logs, table printing,
crash-safe file writes."""

from repro.utils.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    crc32_bytes,
    crc32_file,
    recover_jsonl,
)
from repro.utils.logging import RunLog
from repro.utils.registry import Registry
from repro.utils.rng import SeedBank, generator
from repro.utils.tables import format_float, format_table, print_table

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "crc32_bytes",
    "crc32_file",
    "recover_jsonl",
    "RunLog",
    "Registry",
    "SeedBank",
    "generator",
    "format_float",
    "format_table",
    "print_table",
]
