"""Deterministic random-number management.

Every stochastic component in the reproduction (weight init, data generation,
dropout, masking augmentation, negative sampling) draws from a named child
generator derived from one experiment seed, so results are reproducible and
components do not perturb each other's streams when code is added or removed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SeedBank", "generator"]


def generator(seed: int) -> np.random.Generator:
    """Return a fresh PCG64 generator for ``seed``."""
    return np.random.default_rng(seed)


class SeedBank:
    """Derive independent, named random generators from a root seed.

    Examples
    --------
    >>> bank = SeedBank(7)
    >>> init_rng = bank.child("model-init")
    >>> data_rng = bank.child("data")

    Calling :meth:`child` twice with the same name returns generators with the
    same stream, which makes component-level reproducibility explicit.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._sequence = np.random.SeedSequence(self.seed)

    def child(self, name: str) -> np.random.Generator:
        """Return a generator whose stream depends on (root seed, name)."""
        digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
        derived = np.random.SeedSequence(
            entropy=self.seed, spawn_key=tuple(int(b) for b in digest)
        )
        return np.random.default_rng(derived)

    def spawn(self, count: int) -> list:
        """Return ``count`` sequentially derived generators."""
        return [np.random.default_rng(s) for s in self._sequence.spawn(count)]
