"""Crash-safe file writes: tmp + rename, CRC32 checksums, torn-line recovery.

The persistence layer's contract is *the old state or the new state, never
half of either*.  Writers stage into ``<path>.tmp`` and publish with
:func:`os.replace` (atomic on POSIX and NTFS within one filesystem), so a
crash mid-write leaves the previous file untouched.  Readers that append
(JSONL logs) get :func:`recover_jsonl`, which drops undecodable lines —
the torn tail of an interrupted append — and reports how many.

Torn writes are *injectable*: pass a :class:`~repro.faults.FaultInjector`
and a point name, and a scheduled ``torn_write`` fault writes only the
configured fraction of bytes into the tmp file before raising
:class:`~repro.faults.TransientFault` — exactly the on-disk state a crash
at that byte offset would leave, with the destination file intact.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.injector import NULL_INJECTOR, TransientFault

__all__ = [
    "crc32_bytes",
    "crc32_file",
    "atomic_write_bytes",
    "atomic_write_text",
    "recover_jsonl",
]

_CHUNK = 1 << 20


def crc32_bytes(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def crc32_file(path: str) -> int:
    """Chunked CRC32 of a file (checkpoints can be large)."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def atomic_write_bytes(
    path: str,
    data: bytes,
    injector: Any = NULL_INJECTOR,
    point: Optional[str] = None,
    **ctx: Any,
) -> None:
    """Write ``data`` to ``path`` via tmp + :func:`os.replace`.

    With an armed injector and a matching ``torn_write`` fault, only the
    scheduled fraction of ``data`` lands in the tmp file and
    :class:`TransientFault` is raised; ``path`` itself is never touched by
    a torn write, so retrying the call is always safe.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp"
    fraction = None
    if point is not None:
        fraction = injector.truncate_fraction(point, **ctx)
    with open(tmp, "wb") as handle:
        if fraction is not None:
            handle.write(data[: int(len(data) * fraction)])
            handle.flush()
        else:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
    if fraction is not None:
        raise TransientFault(f"injected torn write at {point} ({tmp} truncated)")
    os.replace(tmp, path)


def atomic_write_text(
    path: str,
    text: str,
    injector: Any = NULL_INJECTOR,
    point: Optional[str] = None,
    **ctx: Any,
) -> None:
    atomic_write_bytes(path, text.encode("utf-8"), injector=injector, point=point, **ctx)


def recover_jsonl(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Read a JSONL file tolerating a torn tail.

    Returns ``(records, dropped)`` where ``records`` are the lines that
    decode to JSON objects and ``dropped`` counts lines that do not — the
    signature of an append interrupted mid-line (or mid-record corruption).
    A missing file is simply ``([], 0)``.
    """
    if not os.path.exists(path):
        return [], 0
    records: List[Dict[str, Any]] = []
    dropped = 0
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                dropped += 1
                continue
            if not isinstance(record, dict):
                dropped += 1
                continue
            records.append(record)
    return records, dropped
