"""Reproduction of "Attention Weighted Mixture of Experts with Contrastive
Learning for Personalized Ranking in E-commerce" (Gong et al., ICDE 2023).

Subpackages
-----------
``repro.nn``
    NumPy autograd + neural-network substrate (tensors, layers, optimizers,
    losses).
``repro.data``
    Synthetic JD-search-like and Amazon-review-like dataset generators,
    dataset/batching pipeline, long-tail splits, sequence augmentations.
``repro.core``
    The paper's contribution: input network, attention-weighted gate network,
    expert networks, AW-MoE, contrastive training, plus the compared
    baselines (DNN, DIN, Category-MoE) and future-work extensions.
``repro.eval``
    Session-grouped AUC / NDCG metrics, significance tests, t-SNE, GBDT
    feature-importance driver.
``repro.gbdt``
    Gradient-boosted decision trees (stands in for XGBoost in Fig. 2).
``repro.infer``
    The compiled inference path: models traced into flat plans of fused
    NumPy kernels over packed weights, executing allocation-free in a
    preallocated buffer arena (what the serving fleet actually runs).
``repro.retrieval``
    The two-stage retrieval cascade: IVF-flat ANN index over the model's
    item vectors plus a build-time-calibrated linear prefilter, keeping
    serving sublinear in catalog size (with an exhaustive-parity oracle
    mode and a canary retrieval probe).
``repro.serving``
    Search-engine / serving-cost / A/B-test simulators (§III-F, §IV-I).
``repro.online``
    The online learning loop: position-biased click feedback, incremental
    warm-start training, versioned model registry, canary gating, and
    zero-downtime hot-swap into the serving fleet.
"""

__version__ = "1.0.0"
