"""Append-only click log and its conversion into training data.

The serving fleet appends one :class:`ClickRecord` per served ranking (the
shown items in served order plus the simulated click indicators); the
incremental trainer consumes them through a cursor, so the log doubles as a
queue with explicit **lag** accounting (sessions appended but not yet
consumed — the freshness gauge the fleet metrics report).

:func:`build_dataset` turns a window of records back into a
:class:`~repro.data.dataset.RankingDataset` using the *same* public feature
assembly (:func:`repro.data.features.assemble_candidate_batch`) the serving
engine used to score the session — the features the model trained on are
bit-identical to the features it served with, so the online loop introduces
no training/serving skew.  Mirroring the offline protocol (§IV-A1),
clicked impressions are positives and an equal number of sampled non-clicked
impressions per session are negatives (1:1) when an ``rng`` is supplied.

With a ``path``, the log is also **durable** (PR 8): every session appends
one JSONL line, and startup replays the file through a torn-write recovery
scan (:func:`repro.utils.atomic.recover_jsonl`) — a record whose append was
cut mid-line (process crash, full disk, injected ``clicklog.append`` fault)
is dropped, the clean prefix is kept, and the file is rewritten without the
damage.  Recovered history loads as already-consumed (``lag`` counts only
this process's unread sessions) and session ids continue from the highest
recovered id, so a restart never reuses or reorders ids.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.dataset import RankingDataset
from repro.data.features import assemble_candidate_batch
from repro.data.schema import Batch
from repro.data.synthetic import World
from repro.faults.injector import NULL_INJECTOR
from repro.utils.atomic import recover_jsonl

__all__ = ["ClickRecord", "ClickLog", "build_dataset"]


@dataclass(frozen=True)
class ClickRecord:
    """One served session's feedback: shown items (served order) + clicks."""

    session_id: int
    user: int
    query_category: int
    items: np.ndarray  # (S,) 0-based item ids, in served (ranked) order
    clicks: np.ndarray  # (S,) float {0, 1}
    model_version: Optional[str]
    timestamp: float

    @property
    def num_shown(self) -> int:
        return int(self.items.size)

    @property
    def num_clicks(self) -> int:
        return int(self.clicks.sum())


class ClickLog:
    """Append-only feedback log with a consumption cursor.

    ``append`` is the serving side; ``read_new`` is the training side.  The
    distance between them is :attr:`lag` — how far the incremental trainer
    has fallen behind live traffic.

    Parameters
    ----------
    path:
        Optional JSONL file.  When set, every session is appended durably
        and an existing file is recovered at startup (torn trailing records
        dropped, file rewritten clean; see the module docstring).
    injector:
        Optional :class:`~repro.faults.FaultInjector` for the
        ``clicklog.append`` torn-write point (only meaningful with a
        ``path``).
    """

    def __init__(self, path: Optional[str] = None, injector=None) -> None:
        self._records: List[ClickRecord] = []
        self._cursor = 0
        self._next_session = 0
        self.path = None if path is None else str(path)
        self.injector = injector if injector is not None else NULL_INJECTOR
        #: Startup-recovery stats (all zero for a fresh or in-memory log).
        self.recovered_sessions = 0
        self.dropped_records = 0
        #: Torn appends absorbed so far (each also drops one record on the
        #: *next* recovery — the record after a torn line is still intact
        #: because every append starts on its own line).
        self.torn_writes = 0
        if self.path is not None and os.path.exists(self.path):
            self._recover()

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @staticmethod
    def _to_json(record: ClickRecord) -> str:
        return json.dumps(
            {
                "session_id": record.session_id,
                "user": record.user,
                "query_category": record.query_category,
                "items": [int(item) for item in record.items],
                "clicks": [float(click) for click in record.clicks],
                "model_version": record.model_version,
                "timestamp": record.timestamp,
            },
            sort_keys=True,
        )

    @staticmethod
    def _from_json(payload: dict) -> ClickRecord:
        return ClickRecord(
            session_id=int(payload["session_id"]),
            user=int(payload["user"]),
            query_category=int(payload["query_category"]),
            items=np.asarray(payload["items"], dtype=np.int64),
            clicks=np.asarray(payload["clicks"], dtype=np.float32),
            model_version=payload.get("model_version"),
            timestamp=float(payload.get("timestamp", 0.0)),
        )

    def _recover(self) -> None:
        """Load an existing log file, dropping torn/corrupt trailing records.

        Recovered history is pre-consumed (the trainer that logged it
        already read it — or died with it, in which case its candidate died
        too); only a damaged file is rewritten, so a clean restart is a pure
        read.
        """
        payloads, dropped = recover_jsonl(self.path)
        records: List[ClickRecord] = []
        for payload in payloads:
            try:
                records.append(self._from_json(payload))
            except (KeyError, TypeError, ValueError):
                dropped += 1
        records.sort(key=lambda record: record.session_id)
        self._records = records
        self._cursor = len(records)
        self._next_session = records[-1].session_id + 1 if records else 0
        self.recovered_sessions = len(records)
        self.dropped_records = dropped
        if dropped:
            with open(self.path, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(self._to_json(record) + "\n")

    def _append_durable(self, record: ClickRecord) -> None:
        line = self._to_json(record) + "\n"
        fraction = self.injector.truncate_fraction(
            "clicklog.append", session=record.session_id
        )
        if fraction is not None:
            # Simulated mid-append crash: a prefix of the line reaches disk.
            # The trailing newline keeps the *next* append parseable — the
            # torn record itself is what recovery drops.
            line = line[: max(1, int(len(line) * fraction))] + "\n"
            self.torn_writes += 1
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Sequence[ClickRecord]:
        return tuple(self._records)

    @property
    def total_clicks(self) -> int:
        return sum(record.num_clicks for record in self._records)

    @property
    def lag(self) -> int:
        """Sessions appended but not yet consumed by :meth:`read_new`."""
        return len(self._records) - self._cursor

    def log_session(
        self,
        user: int,
        query_category: int,
        items: np.ndarray,
        clicks: np.ndarray,
        model_version: Optional[str] = None,
        timestamp: float = 0.0,
    ) -> ClickRecord:
        """Append one served session's feedback; assigns the session id."""
        items = np.asarray(items)
        clicks = np.asarray(clicks, dtype=np.float32)
        if items.shape != clicks.shape:
            raise ValueError(
                f"items and clicks must align, got {items.shape} vs {clicks.shape}"
            )
        record = ClickRecord(
            session_id=self._next_session,
            user=int(user),
            query_category=int(query_category),
            items=items.copy(),
            clicks=clicks.copy(),
            model_version=model_version,
            timestamp=float(timestamp),
        )
        self._next_session += 1
        self._records.append(record)
        if self.path is not None:
            self._append_durable(record)
        return record

    def read_new(self, max_sessions: Optional[int] = None) -> List[ClickRecord]:
        """Consume (advance the cursor past) the unread records, oldest first."""
        stop = len(self._records)
        if max_sessions is not None:
            stop = min(stop, self._cursor + int(max_sessions))
        window = self._records[self._cursor : stop]
        self._cursor = stop
        return window


def build_dataset(
    world: World,
    records: Sequence[ClickRecord],
    rng: Optional[np.random.Generator] = None,
) -> Optional[RankingDataset]:
    """Training dataset from click records; ``None`` if nothing is usable.

    Sessions contribute only when they hold at least one click and one
    non-click (clickless sessions carry no ranking signal under the
    session-grouped objective, all-clicked ones no contrast).  With an
    ``rng``, negatives are downsampled to 1:1 per session, mirroring the
    offline protocol of §IV-A1; without one, every shown impression of a
    usable session is kept (the canary-holdout convention, matching the
    offline *test*-split protocol).
    """
    batches: List[Batch] = []
    for record in records:
        clicks = record.clicks
        if clicks.size == 0 or clicks.max() < 1 or clicks.min() > 0:
            continue
        keep = np.arange(record.num_shown)
        if rng is not None:
            positives = np.flatnonzero(clicks == 1)
            negatives = np.flatnonzero(clicks == 0)
            count = min(positives.size, negatives.size)
            sampled = rng.choice(negatives, size=count, replace=False)
            keep = np.sort(np.concatenate([positives, sampled]))
        batch = assemble_candidate_batch(
            world, record.user, record.query_category, record.items[keep]
        )
        batch["label"] = clicks[keep].astype(np.float32)
        batch["session_id"] = np.full(keep.size, record.session_id, dtype=np.int64)
        batches.append(batch)
    if not batches:
        return None
    columns = {
        key: np.concatenate([batch[key] for batch in batches], axis=0)
        for key in batches[0]
    }
    return RankingDataset(meta=world.meta(), **columns)
