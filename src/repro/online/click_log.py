"""Append-only click log and its conversion into training data.

The serving fleet appends one :class:`ClickRecord` per served ranking (the
shown items in served order plus the simulated click indicators); the
incremental trainer consumes them through a cursor, so the log doubles as a
queue with explicit **lag** accounting (sessions appended but not yet
consumed — the freshness gauge the fleet metrics report).

:func:`build_dataset` turns a window of records back into a
:class:`~repro.data.dataset.RankingDataset` using the *same* public feature
assembly (:func:`repro.data.features.assemble_candidate_batch`) the serving
engine used to score the session — the features the model trained on are
bit-identical to the features it served with, so the online loop introduces
no training/serving skew.  Mirroring the offline protocol (§IV-A1),
clicked impressions are positives and an equal number of sampled non-clicked
impressions per session are negatives (1:1) when an ``rng`` is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.dataset import RankingDataset
from repro.data.features import assemble_candidate_batch
from repro.data.schema import Batch
from repro.data.synthetic import World

__all__ = ["ClickRecord", "ClickLog", "build_dataset"]


@dataclass(frozen=True)
class ClickRecord:
    """One served session's feedback: shown items (served order) + clicks."""

    session_id: int
    user: int
    query_category: int
    items: np.ndarray  # (S,) 0-based item ids, in served (ranked) order
    clicks: np.ndarray  # (S,) float {0, 1}
    model_version: Optional[str]
    timestamp: float

    @property
    def num_shown(self) -> int:
        return int(self.items.size)

    @property
    def num_clicks(self) -> int:
        return int(self.clicks.sum())


class ClickLog:
    """Append-only feedback log with a consumption cursor.

    ``append`` is the serving side; ``read_new`` is the training side.  The
    distance between them is :attr:`lag` — how far the incremental trainer
    has fallen behind live traffic.
    """

    def __init__(self) -> None:
        self._records: List[ClickRecord] = []
        self._cursor = 0
        self._next_session = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Sequence[ClickRecord]:
        return tuple(self._records)

    @property
    def total_clicks(self) -> int:
        return sum(record.num_clicks for record in self._records)

    @property
    def lag(self) -> int:
        """Sessions appended but not yet consumed by :meth:`read_new`."""
        return len(self._records) - self._cursor

    def log_session(
        self,
        user: int,
        query_category: int,
        items: np.ndarray,
        clicks: np.ndarray,
        model_version: Optional[str] = None,
        timestamp: float = 0.0,
    ) -> ClickRecord:
        """Append one served session's feedback; assigns the session id."""
        items = np.asarray(items)
        clicks = np.asarray(clicks, dtype=np.float32)
        if items.shape != clicks.shape:
            raise ValueError(
                f"items and clicks must align, got {items.shape} vs {clicks.shape}"
            )
        record = ClickRecord(
            session_id=self._next_session,
            user=int(user),
            query_category=int(query_category),
            items=items.copy(),
            clicks=clicks.copy(),
            model_version=model_version,
            timestamp=float(timestamp),
        )
        self._next_session += 1
        self._records.append(record)
        return record

    def read_new(self, max_sessions: Optional[int] = None) -> List[ClickRecord]:
        """Consume (advance the cursor past) the unread records, oldest first."""
        stop = len(self._records)
        if max_sessions is not None:
            stop = min(stop, self._cursor + int(max_sessions))
        window = self._records[self._cursor : stop]
        self._cursor = stop
        return window


def build_dataset(
    world: World,
    records: Sequence[ClickRecord],
    rng: Optional[np.random.Generator] = None,
) -> Optional[RankingDataset]:
    """Training dataset from click records; ``None`` if nothing is usable.

    Sessions contribute only when they hold at least one click and one
    non-click (clickless sessions carry no ranking signal under the
    session-grouped objective, all-clicked ones no contrast).  With an
    ``rng``, negatives are downsampled to 1:1 per session, mirroring the
    offline protocol of §IV-A1; without one, every shown impression of a
    usable session is kept (the canary-holdout convention, matching the
    offline *test*-split protocol).
    """
    batches: List[Batch] = []
    for record in records:
        clicks = record.clicks
        if clicks.size == 0 or clicks.max() < 1 or clicks.min() > 0:
            continue
        keep = np.arange(record.num_shown)
        if rng is not None:
            positives = np.flatnonzero(clicks == 1)
            negatives = np.flatnonzero(clicks == 0)
            count = min(positives.size, negatives.size)
            sampled = rng.choice(negatives, size=count, replace=False)
            keep = np.sort(np.concatenate([positives, sampled]))
        batch = assemble_candidate_batch(
            world, record.user, record.query_category, record.items[keep]
        )
        batch["label"] = clicks[keep].astype(np.float32)
        batch["session_id"] = np.full(keep.size, record.session_id, dtype=np.int64)
        batches.append(batch)
    if not batches:
        return None
    columns = {
        key: np.concatenate([batch[key] for batch in batches], axis=0)
        for key in batches[0]
    }
    return RankingDataset(meta=world.meta(), **columns)
