"""Canary gate: no candidate reaches production on trust.

Before a refreshed model is hot-swapped into the fleet, it replays held-out
traffic — recent click-log sessions withheld from training — through the
paper's evaluation stack (:mod:`repro.eval`: session-grouped AUC and NDCG,
Eq. 12–13) and is compared against the *current production model on the
same sessions*.  Promotion requires every gated metric to be no worse than
production minus a small tolerance; a corrupted or diverged candidate (the
online loop's worst failure mode: silently degrading the ranker with noisy
click feedback) is rejected and production keeps serving.

Fleets that serve through the retrieval cascade (:mod:`repro.retrieval`)
additionally attach a :class:`~repro.retrieval.RetrievalProbe`: the swap
rebuilds the ANN item index from the candidate's embedding table, and an
embedding-table corruption can leave ranking metrics intact (the ranker
still orders whatever it is given) while retrieval quietly stops surfacing
the right candidates.  The probe rebuilds the candidate's cascade, measures
its recall against its own exhaustive-parity oracle, and blocks promotion
below the configured floor.

The replay scores through the **compiled inference path** (:mod:`repro.
infer`) — the same plan the fleet will execute after promotion — so the
canary gates what production actually serves, compilation included; a bug
in a model's compiled plan is caught here, before the swap.  Models with no
registered compiler replay eagerly, matching their serving fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.ranking_model import RankingModel
from repro.data.dataset import RankingDataset
from repro.eval.auc import session_auc
from repro.eval.evaluator import predict_scores
from repro.eval.ndcg import session_ndcg
from repro.faults.injector import NULL_INJECTOR
from repro.infer import CompileError, compile_model
from repro.obs import NULL_TRACE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.retrieval import RetrievalProbe

__all__ = ["CanaryReport", "CanaryGate"]


@dataclass(frozen=True)
class CanaryReport:
    """Verdict on one candidate version."""

    passed: bool
    candidate: Dict[str, float]
    production: Optional[Dict[str, float]]
    reasons: Tuple[str, ...] = ()

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        metrics = " ".join(f"{k}={v:.4f}" for k, v in self.candidate.items())
        return f"canary {verdict} ({metrics})" + (
            f" [{'; '.join(self.reasons)}]" if self.reasons else ""
        )


class CanaryGate:
    """Regression gate over held-out traffic.

    Parameters
    ----------
    tolerance:
        Maximum allowed drop per metric versus production.  0 demands
        strict non-regression; the default absorbs evaluation noise on
        small holdout windows.
    metrics:
        Which session metrics gate promotion (subset of ``auc``/``ndcg``).
    use_compiled:
        Replay through the compiled inference plan (default) — the path the
        fleet serves — falling back to eager for uncompilable models.
        ``False`` forces the eager forward (used by parity tests).
    retrieval_probe:
        Optional :class:`~repro.retrieval.RetrievalProbe`; when set, the
        candidate must also keep cascade retrieval recall above the probe's
        floor (checked on the candidate alone — the oracle is the
        candidate's own exhaustive cascade, so production is not involved).
    injector:
        Optional :class:`~repro.faults.FaultInjector`; :meth:`judge` visits
        the ``canary.judge`` point at entry, so a chaos plan can fail a
        replay transiently (the online loop retries with backoff rather
        than skipping the gate).
    """

    _METRIC_FNS = {"auc": session_auc, "ndcg": session_ndcg}

    def __init__(
        self,
        tolerance: float = 0.005,
        metrics: Sequence[str] = ("auc", "ndcg"),
        use_compiled: bool = True,
        retrieval_probe: Optional["RetrievalProbe"] = None,
        injector=None,
    ) -> None:
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        unknown = set(metrics) - set(self._METRIC_FNS)
        if unknown:
            raise ValueError(f"unknown canary metrics: {sorted(unknown)}")
        if not metrics:
            raise ValueError("at least one gated metric is required")
        self.tolerance = float(tolerance)
        self.metrics = tuple(metrics)
        self.use_compiled = bool(use_compiled)
        self.retrieval_probe = retrieval_probe
        self.injector = injector if injector is not None else NULL_INJECTOR

    def _scorer(self, model: RankingModel):
        """The object whose ``predict_proba`` the replay runs — the compiled
        plan when enabled and available, the eager model otherwise.

        Deliberately compiles fresh on every call instead of memoizing per
        model object: the incremental trainer may update a model's weights
        in place between refresh cycles, and a cached plan (a weight
        *snapshot*) would silently replay stale weights.  Packing is
        sub-millisecond at this scale; staleness is a wrong promotion.
        """
        if self.use_compiled:
            try:
                return compile_model(model)
            except CompileError:
                pass
        return model

    def evaluate(self, model: RankingModel, holdout: RankingDataset) -> Dict[str, float]:
        """The gated session metrics of ``model`` on ``holdout``."""
        return self._evaluate_with(self._scorer(model), holdout)

    def _evaluate_with(self, scorer, holdout: RankingDataset) -> Dict[str, float]:
        scores = predict_scores(scorer, holdout)
        return {
            name: self._METRIC_FNS[name](scores, holdout.label, holdout.session_id)
            for name in self.metrics
        }

    def judge(
        self,
        candidate: RankingModel,
        production: Optional[RankingModel],
        holdout: RankingDataset,
        trace=NULL_TRACE,
    ) -> CanaryReport:
        """Replay ``holdout`` through both models and compare.

        With no production model (first deployment) the candidate passes by
        default on the ranking metrics — there is nothing it could regress
        against — but a configured retrieval probe still applies: a
        first-deployment index built from a broken table must not serve.

        ``trace`` accepts the refresh cycle's :class:`~repro.obs.Trace`: the
        candidate/production replays and the retrieval probe land as child
        spans under the caller's open ``canary`` span, so a slow judgement
        is attributable to its stage (the probe's cascade rebuild dominates
        at large catalogs).
        """
        self.injector.fire("canary.judge", rows=len(holdout))
        # One compile per judgement: weights cannot change mid-call, so the
        # replay and the retrieval probe share the same scoring surface.
        candidate_scorer = self._scorer(candidate)
        with trace.span("replay", model="candidate", rows=len(holdout)) as span:
            candidate_metrics = self._evaluate_with(candidate_scorer, holdout)
            span.set(**{name: round(value, 6) for name, value in candidate_metrics.items()})
        reasons: List[str] = []
        if self.retrieval_probe is not None:
            # The probe's cascade build scores through the same compiled
            # surface the fleet's swap will rebuild from, so the canary
            # gates the retrieval stack production would actually serve.
            with trace.span("recall-probe") as span:
                ok, recall = self.retrieval_probe.check(candidate, scorer=candidate_scorer)
                span.set(recall=recall, passed=ok)
            candidate_metrics["retrieval_recall"] = recall
            if not ok:
                reasons.append(
                    f"retrieval recall collapsed: {recall:.4f} < "
                    f"{self.retrieval_probe.min_recall} (cascade vs exhaustive oracle)"
                )
        if production is None:
            return CanaryReport(
                passed=not reasons,
                candidate=candidate_metrics,
                production=None,
                reasons=tuple(reasons),
            )
        with trace.span("replay", model="production", rows=len(holdout)):
            production_metrics = self.evaluate(production, holdout)
        for name in self.metrics:
            floor = production_metrics[name] - self.tolerance
            if candidate_metrics[name] < floor:
                reasons.append(
                    f"{name} regressed: {candidate_metrics[name]:.4f} < "
                    f"{production_metrics[name]:.4f} - {self.tolerance}"
                )
        return CanaryReport(
            passed=not reasons,
            candidate=candidate_metrics,
            production=production_metrics,
            reasons=tuple(reasons),
        )
