"""Streaming incremental trainer: warm-start refreshes from click feedback.

Production rankers are not retrained from scratch — each refresh cycle
continues optimizing the previous deployment's weights on the newest slice
of the click log (§III-F; the same continuous-update story as AMoE and the
Yandex system).  :class:`IncrementalTrainer` wraps the exact per-batch update
of :func:`repro.core.trainer.train_step` and holds its AdamW optimizers
**across** :meth:`update` calls, so the Adam moment estimates and bias-
correction step counts carry over between cycles instead of resetting (a
cold optimizer on warm weights wastes the first hundreds of steps
re-estimating curvature).

Checkpointing goes through :func:`repro.nn.serialization.save_training_state`:
model parameters, every optimizer's buffers, and the update counter travel
together, so ``save → load → update`` is bitwise-identical to never having
stopped (``tests/online/test_incremental.py`` asserts this).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.config import TrainConfig
from repro.core.ranking_model import RankingModel
from repro.core.trainer import build_optimizers, build_strategy, train_step
from repro.data.dataset import RankingDataset, iterate_batches
from repro.faults.injector import NULL_INJECTOR
from repro.nn import GradArena, load_training_state, save_training_state
from repro.obs import NULL_TRACE, MetricsRegistry
from repro.utils.logging import RunLog
from repro.utils.rng import SeedBank

__all__ = ["IncrementalTrainer"]


class IncrementalTrainer:
    """Warm-start mini-batch trainer over successive click-log windows.

    Parameters
    ----------
    model:
        The training twin of the production model.  It is mutated in place
        by :meth:`update`; deployments should go through the model registry
        (register → canary → load a fresh serving copy), never by handing
        this object to the fleet directly.
    config:
        The same :class:`~repro.core.config.TrainConfig` the offline trainer
        uses; ``epochs`` is the number of passes per refresh window.
    seed:
        Root seed.  Every update derives its shuffle / contrastive streams
        from ``(seed, update_index)``, which makes a restored trainer's next
        update identical to an uninterrupted one.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.  When attached, every
        train step streams its wall-clock (``train_step_ms``), loss
        (``train_loss``), and pre-clip gradient norm (``train_grad_norm``)
        into fixed-size histograms, plus a ``train_steps_total`` counter —
        the learning-loop half of the fleet's telemetry.
    injector:
        Optional :class:`~repro.faults.FaultInjector`; :meth:`update` visits
        the ``trainer.update`` point at entry, so a chaos plan can make a
        refresh fail transiently before any weight moves (the online loop
        retries it with backoff).
    """

    def __init__(
        self,
        model: RankingModel,
        config: TrainConfig,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        injector=None,
    ) -> None:
        if config.contrastive and not model.supports_contrastive:
            raise TypeError(
                f"contrastive training requested but {type(model).__name__} "
                "has no gate network"
            )
        self.model = model
        self.config = config
        self.seed = int(seed)
        self.metrics = metrics
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.optimizers = build_optimizers(model, config)
        self.strategy = build_strategy(config)
        # One arena for the trainer's lifetime: refresh cycles run the same
        # step shapes over and over, so after the first window the gradient
        # buffers of every subsequent cycle come from the pool.
        self.arena = GradArena() if config.fast_path else None
        self.updates = 0
        self.total_steps = 0

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def update(
        self,
        dataset: RankingDataset,
        log: Optional[RunLog] = None,
        trace=NULL_TRACE,
    ) -> RunLog:
        """One refresh cycle: ``config.epochs`` passes over ``dataset``.

        Windows smaller than ``config.batch_size`` train as a single full
        batch (a refresh must never be silently skipped because traffic was
        light); under the contrastive objective, batches too small for
        in-batch negative sampling are dropped instead.

        ``trace`` accepts the refresh cycle's :class:`~repro.obs.Trace`:
        each epoch becomes a child span (nested under the caller's open
        ``train`` span) carrying its mean loss and gradient norm, so a
        refresh trace shows *where inside training* the time and the loss
        went, not just that training happened.
        """
        self.injector.fire("trainer.update", update=self.updates)
        if log is None:
            log = RunLog(name=f"{type(self.model).__name__}-update{self.updates}")
        bank = SeedBank(self.seed)
        shuffle_rng = bank.child(f"update-{self.updates}-shuffle")
        cl_rng = bank.child(f"update-{self.updates}-contrastive")
        batch_size = min(self.config.batch_size, len(dataset))
        min_rows = self.config.num_negatives + 1 if self.config.contrastive else 1
        self.model.train()
        step = 0
        for epoch in range(self.config.epochs):
            epoch_steps = 0
            loss_sum = 0.0
            grad_norm_sum = 0.0
            with trace.span("epoch", index=epoch) as epoch_span:
                for batch in iterate_batches(dataset, batch_size, rng=shuffle_rng):
                    if batch["label"].shape[0] < min_rows:
                        continue
                    step += 1
                    step_start = time.perf_counter()
                    metrics = train_step(
                        self.model,
                        batch,
                        self.config,
                        self.optimizers,
                        self.strategy,
                        cl_rng,
                        self.arena,
                    )
                    log.log(step, epoch=epoch, **metrics)
                    epoch_steps += 1
                    loss_sum += metrics["loss"]
                    grad_norm_sum += metrics.get("grad_norm", 0.0)
                    if self.metrics is not None:
                        self._record_step_metrics(
                            (time.perf_counter() - step_start) * 1000.0, metrics
                        )
                if epoch_steps:
                    epoch_span.set(
                        steps=epoch_steps,
                        mean_loss=loss_sum / epoch_steps,
                        mean_grad_norm=grad_norm_sum / epoch_steps,
                    )
        self.model.eval()
        self.updates += 1
        self.total_steps += step
        return log

    def _record_step_metrics(self, elapsed_ms: float, metrics: dict) -> None:
        registry = self.metrics
        registry.counter("train_steps_total", "train steps across all refreshes").inc()
        registry.histogram("train_step_ms", "per-step training wall-clock (ms)").record(
            elapsed_ms
        )
        registry.histogram("train_loss", "per-step training loss").record(
            max(metrics["loss"], 0.0)
        )
        if "grad_norm" in metrics:
            registry.histogram("train_grad_norm", "pre-clip global gradient norm").record(
                metrics["grad_norm"]
            )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Checkpoint weights, optimizer state, and the update counters."""
        save_training_state(
            path,
            self.model,
            self.optimizers,
            extra={
                "updates": self.updates,
                "total_steps": self.total_steps,
                "seed": self.seed,
            },
        )

    def load(self, path: str) -> None:
        """Restore a :meth:`save` checkpoint; continuing is then bitwise-
        identical to never having stopped."""
        extra = load_training_state(path, self.model, self.optimizers)
        self.updates = int(extra.get("updates", 0))
        self.total_steps = int(extra.get("total_steps", 0))
        if "seed" in extra and int(extra["seed"]) != self.seed:
            raise ValueError(
                f"checkpoint was trained under seed {int(extra['seed'])}, "
                f"trainer configured with {self.seed}"
            )
