"""Versioned model registry: the source of truth for what can be deployed.

Every refresh cycle registers its candidate as an immutable, numbered
version — a checkpoint file (built on :mod:`repro.nn.serialization`, holding
weights and, when a trainer is supplied, its full optimizer state) plus
metadata: the click-log window it trained on, its canary metrics, its parent
version, and a lifecycle status::

    candidate ──canary pass──► production ──newer version──► archived
        └───────canary fail──► rejected
        └───corrupt checkpoint─► quarantined

Exactly one version is ``production`` at a time; the hot-swap deployer reads
it from here and the canary gate writes verdicts back, so the registry's
JSON index (``registry.json`` under the root directory) is a complete,
persistent audit trail of the online loop.

Persistence is **crash-safe** (PR 8): the index is written tmp+rename with
an embedded CRC32 (a torn or corrupted index is detected, quarantined to
``registry.json.corrupt``, and recovered from the ``.bak`` copy of the
previous write — or, failing that, rebuilt by scanning the checkpoint
files); every checkpoint records a CRC32 at registration, and
:meth:`ModelRegistry.load_into` verifies it — plus the finiteness of every
restored tensor — raising a typed :class:`CorruptCheckpointError` instead
of silently serving garbage weights (previously only the canary's metric
gate stood between a flipped embedding bit and production).
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import zipfile

import numpy as np

from repro.core.ranking_model import RankingModel
from repro.faults.injector import NULL_INJECTOR, TransientFault
from repro.nn import load_module, load_training_state, save_module
from repro.online.incremental import IncrementalTrainer
from repro.utils.atomic import atomic_write_bytes, crc32_bytes, crc32_file

__all__ = ["CorruptCheckpointError", "ModelVersion", "ModelRegistry"]

#: Lifecycle states of a registered version.
_STATUSES = ("candidate", "production", "archived", "rejected", "quarantined")


class CorruptCheckpointError(RuntimeError):
    """A checkpoint failed its integrity check (CRC mismatch, unreadable
    archive, or non-finite restored tensors) and must not serve."""


@dataclass
class ModelVersion:
    """Metadata of one registered checkpoint."""

    version: int
    path: str
    parent: Optional[int]
    created_at: float
    #: Click-log session window ``[start, stop)`` the version trained on
    #: (``(0, 0)`` for offline-trained seeds).
    window: Tuple[int, int] = (0, 0)
    metrics: Dict[str, float] = field(default_factory=dict)
    status: str = "candidate"
    #: CRC32 of the checkpoint file at registration time (``None`` on
    #: records written before checksums existed — back-compat).
    checksum: Optional[int] = None

    def to_json(self) -> Dict[str, object]:
        record = asdict(self)
        record["window"] = list(self.window)
        return record

    @staticmethod
    def from_json(record: Dict[str, object]) -> "ModelVersion":
        record = dict(record)
        record["window"] = tuple(record.get("window", (0, 0)))
        return ModelVersion(**record)


class ModelRegistry:
    """Directory-backed store of versioned checkpoints with one production.

    Parameters
    ----------
    root:
        Directory for checkpoint files and the ``registry.json`` index.  An
        existing index is loaded, so a registry survives process restarts.
    clock:
        Timestamp source (injectable for deterministic tests).
    injector:
        Optional :class:`~repro.faults.FaultInjector` for the
        ``registry.save_index`` (torn index write) and
        ``registry.checkpoint`` (checkpoint corruption) points.
    """

    INDEX_NAME = "registry.json"
    #: Internal retries of a torn index write (the rewrite IS the recovery:
    #: tmp+rename means the previous index is intact between attempts).
    _SAVE_ATTEMPTS = 3

    def __init__(
        self,
        root: str,
        clock: Callable[[], float] = time.time,
        injector=None,
    ) -> None:
        self.root = str(root)
        self._clock = clock
        self.injector = injector if injector is not None else NULL_INJECTOR
        self._versions: Dict[int, ModelVersion] = {}
        #: Startup-recovery report: ``None`` after a clean load, else
        #: ``{"source": "backup"|"scan", ...}`` describing what was repaired.
        self.recovery: Optional[Dict[str, object]] = None
        #: Torn index writes absorbed by the internal retry (observability).
        self.torn_index_writes = 0
        os.makedirs(self.root, exist_ok=True)
        self._load_index()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        model: RankingModel,
        parent: Optional[int] = None,
        window: Tuple[int, int] = (0, 0),
        metrics: Optional[Dict[str, float]] = None,
        trainer: Optional[IncrementalTrainer] = None,
    ) -> ModelVersion:
        """Checkpoint ``model`` as the next version (status ``candidate``).

        With a ``trainer``, the checkpoint carries full training state
        (optimizer buffers included) so a future cycle — or process — can
        warm-start from it; otherwise only the parameters are stored.
        """
        number = self.latest_version + 1
        path = os.path.join(self.root, f"v{number:04d}.npz")
        if trainer is not None:
            if trainer.model is not model:
                raise ValueError("trainer.model must be the model being registered")
            trainer.save(path)
        else:
            save_module(model, path)
        # Checksum the bytes as written; the injection point *after* it
        # models bit rot between save and load, which is exactly what the
        # CRC verification in load_into exists to catch.
        checksum = crc32_file(path)
        self.injector.corrupt_file("registry.checkpoint", path, version=number)
        entry = ModelVersion(
            version=number,
            path=path,
            parent=parent,
            created_at=float(self._clock()),
            window=(int(window[0]), int(window[1])),
            metrics=dict(metrics or {}),
            checksum=checksum,
        )
        self._versions[number] = entry
        self._save_index()
        return entry

    def load_into(
        self,
        version: int,
        model: RankingModel,
        trainer: Optional[IncrementalTrainer] = None,
    ) -> RankingModel:
        """Restore a version's weights into ``model`` (and training state
        into ``trainer`` when the checkpoint carries it).

        Integrity-gated: the checkpoint's CRC32 is verified against the
        value recorded at registration *before* any bytes deserialize, and
        every restored tensor is checked finite afterwards — a corrupted or
        NaN-poisoned checkpoint raises :class:`CorruptCheckpointError`
        instead of silently loading garbage weights (the failure mode
        ``canary.py`` documents as able to slip past ranking metrics).
        """
        entry = self.get(version)
        if trainer is not None and trainer.model is not model:
            raise ValueError("trainer.model must be the model being restored")
        self._verify_checksum(entry)
        try:
            if trainer is not None:
                trainer.load(entry.path)
            else:
                # Training-state checkpoints prefix parameters with
                # "model."; plain ones store them flat.  Accept both.
                try:
                    load_training_state(entry.path, model, ())
                except KeyError:
                    load_module(model, entry.path)
        except (OSError, EOFError, ValueError, zipfile.BadZipFile) as exc:
            raise CorruptCheckpointError(
                f"checkpoint {entry.path} is unreadable: {exc}"
            ) from exc
        self._verify_finite(entry, model)
        return model

    def _verify_checksum(self, entry: ModelVersion) -> None:
        if entry.checksum is None:  # pre-checksum record — nothing to compare
            return
        if not os.path.exists(entry.path):
            raise CorruptCheckpointError(f"checkpoint {entry.path} is missing")
        actual = crc32_file(entry.path)
        if actual != int(entry.checksum):
            raise CorruptCheckpointError(
                f"checkpoint {entry.path} failed CRC32 verification "
                f"(stored {int(entry.checksum):#010x}, actual {actual:#010x})"
            )

    @staticmethod
    def _verify_finite(entry: ModelVersion, model: RankingModel) -> None:
        for name, value in model.state_dict().items():
            if not np.all(np.isfinite(value)):
                raise CorruptCheckpointError(
                    f"checkpoint {entry.path} restored non-finite values in {name!r}"
                )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def promote(self, version: int, metrics: Optional[Dict[str, float]] = None) -> ModelVersion:
        """Make ``version`` production; the previous production archives."""
        entry = self.get(version)
        if entry.status in ("rejected", "quarantined"):
            raise ValueError(
                f"version {version} was {entry.status} and cannot be promoted"
            )
        current = self.production
        if current is not None and current.version != version:
            current.status = "archived"
        entry.status = "production"
        if metrics is not None:
            entry.metrics.update(metrics)
        self._save_index()
        return entry

    def reject(self, version: int, metrics: Optional[Dict[str, float]] = None) -> ModelVersion:
        """Mark a candidate as failed (the canary gate blocked it)."""
        entry = self.get(version)
        if entry.status == "production":
            raise ValueError(f"version {version} is production; demote by promoting another")
        entry.status = "rejected"
        if metrics is not None:
            entry.metrics.update(metrics)
        self._save_index()
        return entry

    def quarantine(self, version: int) -> ModelVersion:
        """Mark a version's checkpoint as corrupt — it can never be promoted.

        Distinct from :meth:`reject` (a metric verdict): quarantine records
        an *integrity* failure, so the online loop's recovery path can tell
        "this model was worse" apart from "this file is damaged".
        """
        entry = self.get(version)
        if entry.status == "production":
            raise ValueError(
                f"version {version} is production; promote a replacement first"
            )
        entry.status = "quarantined"
        self._save_index()
        return entry

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, version: int) -> ModelVersion:
        if version not in self._versions:
            raise KeyError(f"unknown model version {version}")
        return self._versions[version]

    @property
    def versions(self) -> List[ModelVersion]:
        """All versions, oldest first."""
        return [self._versions[number] for number in sorted(self._versions)]

    @property
    def latest_version(self) -> int:
        """Highest registered version number (0 when empty)."""
        return max(self._versions, default=0)

    @property
    def production(self) -> Optional[ModelVersion]:
        for entry in self._versions.values():
            if entry.status == "production":
                return entry
        return None

    @property
    def num_rejected(self) -> int:
        return sum(1 for entry in self._versions.values() if entry.status == "rejected")

    def label(self, version: int) -> str:
        """Human-readable version tag (what the serving fleet is stamped with)."""
        return f"v{version:04d}"

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _index_path(self) -> str:
        return os.path.join(self.root, self.INDEX_NAME)

    def _backup_path(self) -> str:
        return self._index_path() + ".bak"

    @staticmethod
    def _canonical_versions(versions: List[Dict[str, object]]) -> bytes:
        # Canonical encoding: the CRC is computed over exactly these bytes
        # at save time and recomputed over the re-encoded records at load
        # time, so any mutation of the version list is detected.
        return json.dumps(versions, sort_keys=True, separators=(",", ":")).encode("utf-8")

    def _save_index(self) -> None:
        versions = [entry.to_json() for entry in self.versions]
        payload = {
            "versions": versions,
            "crc32": crc32_bytes(self._canonical_versions(versions)),
        }
        data = json.dumps(payload, indent=2).encode("utf-8")
        index = self._index_path()
        if os.path.exists(index):
            # Keep the previous good index as the first-line recovery source.
            shutil.copyfile(index, self._backup_path())
        last: Optional[TransientFault] = None
        for attempt in range(self._SAVE_ATTEMPTS):
            try:
                atomic_write_bytes(
                    index,
                    data,
                    injector=self.injector,
                    point="registry.save_index",
                    attempt=attempt,
                )
                return
            except TransientFault as exc:
                # Torn write hit the tmp file only; the published index (and
                # .bak) are intact, so retrying is safe and side-effect free.
                self.torn_index_writes += 1
                last = exc
        raise last  # pragma: no cover - exhausted retries surface the fault

    def _load_index(self) -> None:
        index = self._index_path()
        versions = self._read_index_file(index)
        if versions is not None:
            for record in versions:
                entry = ModelVersion.from_json(record)
                self._versions[entry.version] = entry
            return
        if not os.path.exists(index) and not os.path.exists(self._backup_path()):
            # Fresh directory (or one with loose checkpoints but no index
            # ever written) — scan for orphaned checkpoints.
            recovered = self._rebuild_from_checkpoints()
            if recovered:
                self.recovery = {"source": "scan", "versions": sorted(self._versions)}
                self._save_index()
            return
        # The index existed but was torn/corrupt: it has been quarantined to
        # *.corrupt by _read_index_file.  Fall back to the backup copy.
        backup = self._read_index_file(self._backup_path())
        if backup is not None:
            for record in backup:
                entry = ModelVersion.from_json(record)
                self._versions[entry.version] = entry
            # The backup predates the last (torn) write; scanning picks up
            # any checkpoint registered after it was taken.
            extra = self._rebuild_from_checkpoints()
            self.recovery = {
                "source": "backup",
                "versions": sorted(self._versions),
                "rescanned": extra,
            }
        else:
            self._rebuild_from_checkpoints()
            self.recovery = {"source": "scan", "versions": sorted(self._versions)}
        self._save_index()

    def _read_index_file(self, path: str) -> Optional[List[Dict[str, object]]]:
        """Parse + CRC-validate an index file.

        Returns the version records on success.  A missing file returns
        ``None``; a torn or corrupt file is renamed to ``<path>.corrupt``
        (preserved for forensics, out of the way of recovery) and also
        returns ``None``.
        """
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            versions = payload["versions"]
            if not isinstance(versions, list):
                raise ValueError("versions is not a list")
            stored = payload.get("crc32")
            if stored is not None:
                actual = crc32_bytes(self._canonical_versions(versions))
                if int(stored) != actual:
                    raise ValueError(
                        f"index CRC mismatch (stored {int(stored):#010x}, "
                        f"actual {actual:#010x})"
                    )
        except (OSError, ValueError, KeyError, TypeError) as exc:
            corrupt = path + ".corrupt"
            try:
                os.replace(path, corrupt)
            except OSError:  # pragma: no cover - rename best-effort
                pass
            self.recovery = {"source": "pending", "error": str(exc)}
            return None
        return versions

    def _rebuild_from_checkpoints(self) -> List[int]:
        """Scan the root for ``v%04d.npz`` checkpoints not in the index.

        Readable files become ``candidate`` entries (lifecycle status was
        lost with the index, so nothing is assumed production); unreadable
        ones are renamed ``*.corrupt``.  Returns the recovered version
        numbers.
        """
        recovered: List[int] = []
        for name in sorted(os.listdir(self.root)):
            matched = re.fullmatch(r"v(\d{4})\.npz", name)
            if matched is None:
                continue
            number = int(matched.group(1))
            if number in self._versions:
                continue
            path = os.path.join(self.root, name)
            try:
                checksum = crc32_file(path)
                with np.load(path) as archive:
                    if not archive.files:
                        raise ValueError("empty checkpoint archive")
            except (OSError, ValueError, zipfile.BadZipFile):
                try:
                    os.replace(path, path + ".corrupt")
                except OSError:  # pragma: no cover - rename best-effort
                    pass
                continue
            self._versions[number] = ModelVersion(
                version=number,
                path=path,
                parent=None,
                created_at=float(os.path.getmtime(path)),
                status="candidate",
                checksum=checksum,
            )
            recovered.append(number)
        return recovered
