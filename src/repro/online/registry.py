"""Versioned model registry: the source of truth for what can be deployed.

Every refresh cycle registers its candidate as an immutable, numbered
version — a checkpoint file (built on :mod:`repro.nn.serialization`, holding
weights and, when a trainer is supplied, its full optimizer state) plus
metadata: the click-log window it trained on, its canary metrics, its parent
version, and a lifecycle status::

    candidate ──canary pass──► production ──newer version──► archived
        └───────canary fail──► rejected

Exactly one version is ``production`` at a time; the hot-swap deployer reads
it from here and the canary gate writes verdicts back, so the registry's
JSON index (``registry.json`` under the root directory) is a complete,
persistent audit trail of the online loop.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.ranking_model import RankingModel
from repro.nn import load_module, load_training_state, save_module
from repro.online.incremental import IncrementalTrainer

__all__ = ["ModelVersion", "ModelRegistry"]

#: Lifecycle states of a registered version.
_STATUSES = ("candidate", "production", "archived", "rejected")


@dataclass
class ModelVersion:
    """Metadata of one registered checkpoint."""

    version: int
    path: str
    parent: Optional[int]
    created_at: float
    #: Click-log session window ``[start, stop)`` the version trained on
    #: (``(0, 0)`` for offline-trained seeds).
    window: Tuple[int, int] = (0, 0)
    metrics: Dict[str, float] = field(default_factory=dict)
    status: str = "candidate"

    def to_json(self) -> Dict[str, object]:
        record = asdict(self)
        record["window"] = list(self.window)
        return record

    @staticmethod
    def from_json(record: Dict[str, object]) -> "ModelVersion":
        record = dict(record)
        record["window"] = tuple(record.get("window", (0, 0)))
        return ModelVersion(**record)


class ModelRegistry:
    """Directory-backed store of versioned checkpoints with one production.

    Parameters
    ----------
    root:
        Directory for checkpoint files and the ``registry.json`` index.  An
        existing index is loaded, so a registry survives process restarts.
    clock:
        Timestamp source (injectable for deterministic tests).
    """

    INDEX_NAME = "registry.json"

    def __init__(self, root: str, clock: Callable[[], float] = time.time) -> None:
        self.root = str(root)
        self._clock = clock
        self._versions: Dict[int, ModelVersion] = {}
        os.makedirs(self.root, exist_ok=True)
        self._load_index()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        model: RankingModel,
        parent: Optional[int] = None,
        window: Tuple[int, int] = (0, 0),
        metrics: Optional[Dict[str, float]] = None,
        trainer: Optional[IncrementalTrainer] = None,
    ) -> ModelVersion:
        """Checkpoint ``model`` as the next version (status ``candidate``).

        With a ``trainer``, the checkpoint carries full training state
        (optimizer buffers included) so a future cycle — or process — can
        warm-start from it; otherwise only the parameters are stored.
        """
        number = self.latest_version + 1
        path = os.path.join(self.root, f"v{number:04d}.npz")
        if trainer is not None:
            if trainer.model is not model:
                raise ValueError("trainer.model must be the model being registered")
            trainer.save(path)
        else:
            save_module(model, path)
        entry = ModelVersion(
            version=number,
            path=path,
            parent=parent,
            created_at=float(self._clock()),
            window=(int(window[0]), int(window[1])),
            metrics=dict(metrics or {}),
        )
        self._versions[number] = entry
        self._save_index()
        return entry

    def load_into(
        self,
        version: int,
        model: RankingModel,
        trainer: Optional[IncrementalTrainer] = None,
    ) -> RankingModel:
        """Restore a version's weights into ``model`` (and training state
        into ``trainer`` when the checkpoint carries it)."""
        entry = self.get(version)
        if trainer is not None:
            if trainer.model is not model:
                raise ValueError("trainer.model must be the model being restored")
            trainer.load(entry.path)
        else:
            # Training-state checkpoints prefix parameters with "model.";
            # plain ones store them flat.  Accept both.
            try:
                load_training_state(entry.path, model, ())
            except KeyError:
                load_module(model, entry.path)
        return model

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def promote(self, version: int, metrics: Optional[Dict[str, float]] = None) -> ModelVersion:
        """Make ``version`` production; the previous production archives."""
        entry = self.get(version)
        if entry.status == "rejected":
            raise ValueError(f"version {version} was rejected and cannot be promoted")
        current = self.production
        if current is not None and current.version != version:
            current.status = "archived"
        entry.status = "production"
        if metrics is not None:
            entry.metrics.update(metrics)
        self._save_index()
        return entry

    def reject(self, version: int, metrics: Optional[Dict[str, float]] = None) -> ModelVersion:
        """Mark a candidate as failed (the canary gate blocked it)."""
        entry = self.get(version)
        if entry.status == "production":
            raise ValueError(f"version {version} is production; demote by promoting another")
        entry.status = "rejected"
        if metrics is not None:
            entry.metrics.update(metrics)
        self._save_index()
        return entry

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, version: int) -> ModelVersion:
        if version not in self._versions:
            raise KeyError(f"unknown model version {version}")
        return self._versions[version]

    @property
    def versions(self) -> List[ModelVersion]:
        """All versions, oldest first."""
        return [self._versions[number] for number in sorted(self._versions)]

    @property
    def latest_version(self) -> int:
        """Highest registered version number (0 when empty)."""
        return max(self._versions, default=0)

    @property
    def production(self) -> Optional[ModelVersion]:
        for entry in self._versions.values():
            if entry.status == "production":
                return entry
        return None

    @property
    def num_rejected(self) -> int:
        return sum(1 for entry in self._versions.values() if entry.status == "rejected")

    def label(self, version: int) -> str:
        """Human-readable version tag (what the serving fleet is stamped with)."""
        return f"v{version:04d}"

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _index_path(self) -> str:
        return os.path.join(self.root, self.INDEX_NAME)

    def _save_index(self) -> None:
        payload = {"versions": [entry.to_json() for entry in self.versions]}
        with open(self._index_path(), "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)

    def _load_index(self) -> None:
        if not os.path.exists(self._index_path()):
            return
        with open(self._index_path(), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for record in payload.get("versions", []):
            entry = ModelVersion.from_json(record)
            self._versions[entry.version] = entry
