"""Position-biased click simulation over served rankings.

The online loop needs user feedback on what the fleet actually served.  This
module implements the standard **position-based model** (PBM) from the
click-model literature: a user clicks a result iff they *examine* its
position and find the item *relevant*,

    P(click at position p) = examination(p) · relevance(item | user, query)

with examination decaying geometrically down the ranking (the head of the
list gets most of the attention — the bias every learning-to-rank-from-logs
system has to live with) and relevance given by the synthetic world's
ground-truth purchase probability (:func:`repro.data.synthetic.true_relevance`),
so simulated clicks carry exactly the signal the offline labels carry.

The examination curve is the model's *configured* property; the empirical
click-through rate per position equals examination × mean relevance at that
position, which ``tests/online/test_click_model.py`` verifies (CTR is
monotonically decreasing in position and, under constant relevance, matches
the configured examination probabilities within sampling tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.data.synthetic import World, true_relevance
from repro.serving.engine import RankedList

__all__ = ["ClickModelConfig", "PositionBiasedClickModel"]

#: ``relevance_fn(user, items, query_category) -> (len(items),) probabilities``.
RelevanceFn = Callable[[int, np.ndarray, int], np.ndarray]


@dataclass(frozen=True)
class ClickModelConfig:
    """Examination curve of the position-based click model.

    ``examination(p) = top_examination · decay^p`` for 0-based position
    ``p``; positions at or beyond ``max_positions`` are never examined
    (the user does not scroll past the first result page).
    """

    top_examination: float = 0.7
    decay: float = 0.85
    max_positions: int = 10

    def __post_init__(self) -> None:
        if not 0.0 < self.top_examination <= 1.0:
            raise ValueError(
                f"top_examination must be in (0, 1], got {self.top_examination}"
            )
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")
        if self.max_positions < 1:
            raise ValueError(f"max_positions must be >= 1, got {self.max_positions}")

    def examination_probabilities(self) -> np.ndarray:
        """The configured examination probability per 0-based position."""
        return self.top_examination * self.decay ** np.arange(self.max_positions)


class PositionBiasedClickModel:
    """Simulate user clicks on a :class:`~repro.serving.engine.RankedList`.

    Parameters
    ----------
    world:
        The synthetic world supplying ground-truth relevance (ignored when a
        custom ``relevance_fn`` is passed).
    rng:
        Source of all randomness (clicks are deterministic given it).
    config:
        The examination curve.
    relevance_fn:
        Override for the relevance term; the click-model tests pass a
        constant function so empirical CTR isolates the examination curve.
    """

    def __init__(
        self,
        world: Optional[World],
        rng: np.random.Generator,
        config: ClickModelConfig = ClickModelConfig(),
        relevance_fn: Optional[RelevanceFn] = None,
    ) -> None:
        if relevance_fn is None:
            if world is None:
                raise ValueError("pass a world or an explicit relevance_fn")

            def relevance_fn(user, items, category):
                return true_relevance(world, user, items, category)
        self.config = config
        self.relevance_fn = relevance_fn
        self._rng = rng
        self.impressions = 0
        self.clicks_generated = 0

    def examination_probabilities(self) -> np.ndarray:
        return self.config.examination_probabilities()

    def shown_positions(self, ranking: RankedList) -> int:
        """How many results of ``ranking`` the user can possibly examine."""
        return int(min(len(ranking.items), self.config.max_positions))

    def clicks(self, ranking: RankedList) -> np.ndarray:
        """Simulated click indicator per shown position (float {0, 1}).

        Only the first :attr:`ClickModelConfig.max_positions` results are
        eligible; the returned array covers exactly the shown prefix of
        ``ranking.items``.
        """
        shown = self.shown_positions(ranking)
        items = np.asarray(ranking.items[:shown])
        examination = self.examination_probabilities()[:shown]
        relevance = np.asarray(
            self.relevance_fn(ranking.user, items, ranking.query_category), dtype=float
        )
        click_prob = examination * relevance
        clicked = (self._rng.random(shown) < click_prob).astype(np.float32)
        self.impressions += shown
        self.clicks_generated += int(clicked.sum())
        return clicked
