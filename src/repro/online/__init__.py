"""``repro.online`` — the online learning loop (serve → learn → deploy).

The paper's AW-MoE is a *deployed* ranker: it is refreshed continuously from
live click logs, not trained once offline (§III-F).  This package closes
that loop over the serving subsystem of :mod:`repro.serving`::

    traffic ──► ShardedCluster ──rankings──► click model (position-biased)
                     ▲                            │
                     │ hot swap                   ▼ clicks
                model registry ◄── register ── click log (append-only)
                     │ promote/reject             │ windowed read
                  canary gate ◄── candidate ── incremental trainer
                                                  (warm-start AdamW)

* :mod:`~repro.online.click_model` — position-based click simulation
  (examination × ground-truth relevance) on served rankings;
* :mod:`~repro.online.click_log` — append-only feedback log with lag
  accounting and skew-free conversion back into training data;
* :mod:`~repro.online.incremental` — streaming warm-start trainer that
  preserves AdamW moment/step state across refresh cycles and checkpoints;
* :mod:`~repro.online.registry` — versioned checkpoint store with a
  candidate → production/rejected/quarantined lifecycle and a crash-safe
  (tmp+rename, CRC-verified, backup+scan-recovered) persistent JSON index;
* :mod:`~repro.online.canary` — AUC/NDCG regression gate replaying held-out
  traffic through candidate and production before any promotion;
* :mod:`~repro.online.loop` — the orchestrator running full refresh cycles
  and hot-swapping promoted versions into the fleet with zero downtime.
"""

from repro.online.canary import CanaryGate, CanaryReport
from repro.online.click_log import ClickLog, ClickRecord, build_dataset
from repro.online.click_model import ClickModelConfig, PositionBiasedClickModel
from repro.online.incremental import IncrementalTrainer
from repro.online.loop import CycleReport, OnlineLoop
from repro.online.registry import CorruptCheckpointError, ModelRegistry, ModelVersion

__all__ = [
    "CorruptCheckpointError",
    "CanaryGate",
    "CanaryReport",
    "ClickLog",
    "ClickRecord",
    "build_dataset",
    "ClickModelConfig",
    "PositionBiasedClickModel",
    "IncrementalTrainer",
    "CycleReport",
    "OnlineLoop",
    "ModelRegistry",
    "ModelVersion",
]
