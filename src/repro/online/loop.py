"""The closed online learning loop: serve → log → train → canary → swap.

:class:`OnlineLoop` wires every online component around PR 1's serving
fleet::

          ┌────────────────────────────────────────────────────────┐
          ▼                                                        │
    ShardedCluster ──RankedLists──► PositionBiasedClickModel       │
          ▲                               │ clicks                 │
          │ hot swap                      ▼                        │
    ModelRegistry ◄── register ── ClickLog ── read_new ──► IncrementalTrainer
          │ promote / reject                                       │
          └────────────── CanaryGate ◄── candidate ────────────────┘

Each :meth:`run_cycle` call is one refresh: replay a traffic slice through
the cluster, simulate clicks on the served rankings, append them to the
click log, consume the unread window (a slice held out for the canary, the
rest for training), warm-start-train the candidate, register it, canary it
against current production on the held-out sessions, and — only on a pass —
hot-swap a *freshly loaded* serving copy into every shard.  The serving
fleet never scores with the trainer's live object, so a cycle that fails
the canary leaves production untouched, and an empty click log leaves the
production rankings bitwise-identical (no accidental skew from the new
path; asserted in ``tests/online/test_loop.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.ranking_model import RankingModel
from repro.data.synthetic import World
from repro.faults.injector import TransientFault
from repro.obs import NULL_TRACER, AlertManager, DriftMonitor, telemetry_snapshot
from repro.online.canary import CanaryGate, CanaryReport
from repro.online.click_log import ClickLog, build_dataset
from repro.online.click_model import PositionBiasedClickModel
from repro.online.incremental import IncrementalTrainer
from repro.online.registry import CorruptCheckpointError, ModelRegistry
from repro.serving.cluster import ShardedCluster, SwapFailed
from repro.serving.engine import RankedList
from repro.serving.loadgen import TrafficEvent, replay
from repro.serving.metrics import ManualClock

__all__ = ["CycleReport", "OnlineLoop"]


@dataclass
class CycleReport:
    """What one refresh cycle did, for audit and benchmarking."""

    cycle: int
    queries_served: int
    sessions_logged: int
    clicks: int
    log_lag: int
    train_rows: int
    candidate_version: Optional[int] = None
    promoted: bool = False
    canary: Optional[CanaryReport] = None
    production_version: Optional[int] = None
    #: Per-feature drift scores of this cycle's live window vs the current
    #: production model's training reference (``None`` until a reference
    #: exists, i.e. before the first promotion freezes one).
    drift: Optional[dict] = None
    #: Alert rules that fired or resolved during this cycle.
    alerts: Optional[list] = None
    #: Set when this cycle rolled production back — either because a
    #: promotion failed partway (corrupt checkpoint, mid-swap crash) or
    #: because an alert fired inside the post-swap watch window.
    rollback: Optional[dict] = None

    def summary(self) -> dict:
        """JSON-serializable view (the benchmark artifact rows)."""
        return {
            "cycle": self.cycle,
            "queries_served": self.queries_served,
            "sessions_logged": self.sessions_logged,
            "clicks": self.clicks,
            "log_lag": self.log_lag,
            "train_rows": self.train_rows,
            "candidate_version": self.candidate_version,
            "promoted": self.promoted,
            "production_version": self.production_version,
            "rollback": self.rollback,
            "drift": None
            if self.drift is None
            else {name: round(scores["psi"], 6) for name, scores in self.drift.items()},
            "alerts": self.alerts,
            "canary": None
            if self.canary is None
            else {
                "passed": self.canary.passed,
                "candidate": self.canary.candidate,
                "production": self.canary.production,
                "reasons": list(self.canary.reasons),
            },
        }


class OnlineLoop:
    """Orchestrates the serve → learn → deploy cycle over one fleet.

    Parameters
    ----------
    world:
        The synthetic world traffic and features are drawn from.
    cluster:
        The serving fleet (PR 1's :class:`~repro.serving.cluster.ShardedCluster`).
    trainer:
        Warm-start trainer owning the *training twin* of the production
        model.  The fleet never serves this object: deployments load a
        fresh copy from the registry (``model_factory``).
    model_factory:
        Zero-argument constructor for an architecture-identical blank model;
        called once per promotion to build the serving copy.
    registry / canary / click_model:
        The remaining loop components; a fresh :class:`ClickLog` is created
        unless one is passed.
    holdout_every:
        Every Nth logged session is withheld from training and reserved for
        the canary replay (production vs candidate on identical traffic).
    clock:
        Optional :class:`~repro.serving.metrics.ManualClock` for
        deterministic simulated-time replay (also timestamps click records).
    tracer:
        Optional :class:`~repro.obs.Tracer` for **refresh-cycle traces**:
        each :meth:`run_cycle` emits one span tree (``serve → read_new →
        train [per-epoch children] → register → canary [replay +
        recall-probe children] → swap``) — the learning-loop counterpart of
        the fleet's per-request traces.
    drift:
        Optional :class:`~repro.obs.DriftMonitor`.  Served sessions stream
        CTR, predicted scores, score-calibration gap, and shown-item
        price/popularity into its live sketches; each promotion freezes the
        live window as the new production model's training-time reference
        (that window *is* the click log the candidate trained on).
    alerts:
        Optional :class:`~repro.obs.AlertManager`, evaluated once per cycle
        against the merged telemetry snapshot (trainer metrics, fleet SLO,
        drift scores, click-log lag, shadow recall).  Unless it already has
        an event log, it is bound to the cluster's control-plane
        :class:`~repro.obs.EventLog`, so alert transitions interleave with
        hot swaps and canary verdicts in one timeline.
    retry_attempts / retry_backoff_s:
        Transient-failure policy for the train and canary stages: a
        :class:`~repro.faults.TransientFault` (injected, or any future
        genuinely-transient failure raised as one) is retried up to
        ``retry_attempts`` times with exponential backoff (``backoff *
        2**attempt`` seconds, advanced on the loop's :class:`ManualClock`
        when one is installed, so tests pay no wall-clock).  Exhaustion
        re-raises — a persistently failing refresh must be loud.
    watch_cycles:
        Post-promotion watch window: if any alert rule *fires* within this
        many cycles of a promotion while the promoted version is still
        production, the loop rolls production back to the promotion's
        parent automatically (registry, fleet, and training twin together).
        The default ``0`` disables auto-rollback — it is opt-in because any
        configured alert (drift included) triggers it, and a fleet that
        alarms routinely should not demote a healthy model; pair it with
        rules over the resilience telemetry
        (:func:`repro.faults.default_fault_alert_rules`).
    """

    def __init__(
        self,
        world: World,
        cluster: ShardedCluster,
        trainer: IncrementalTrainer,
        model_factory: Callable[[], RankingModel],
        registry: ModelRegistry,
        canary: CanaryGate,
        click_model: PositionBiasedClickModel,
        click_log: Optional[ClickLog] = None,
        holdout_every: int = 5,
        seed: int = 0,
        clock: Optional[ManualClock] = None,
        tracer=None,
        drift: Optional[DriftMonitor] = None,
        alerts: Optional[AlertManager] = None,
        retry_attempts: int = 3,
        retry_backoff_s: float = 0.05,
        watch_cycles: int = 0,
    ) -> None:
        if holdout_every < 2:
            raise ValueError(f"holdout_every must be >= 2, got {holdout_every}")
        if retry_attempts < 1:
            raise ValueError(f"retry_attempts must be >= 1, got {retry_attempts}")
        if watch_cycles < 0:
            raise ValueError(f"watch_cycles must be >= 0, got {watch_cycles}")
        self.world = world
        self.cluster = cluster
        self.trainer = trainer
        self.model_factory = model_factory
        self.registry = registry
        self.canary = canary
        self.click_model = click_model
        self.click_log = click_log if click_log is not None else ClickLog()
        self.holdout_every = int(holdout_every)
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.drift = drift
        self.alerts = alerts
        if alerts is not None and alerts.events is None:
            alerts.events = cluster.control.events
        self.retry_attempts = int(retry_attempts)
        self.retry_backoff_s = float(retry_backoff_s)
        self.watch_cycles = int(watch_cycles)
        #: Active post-promotion watch window (``None`` outside one):
        #: ``{"version", "parent", "until"}`` — see ``watch_cycles``.
        self._watch: Optional[dict] = None
        self._neg_rng = np.random.default_rng(np.random.SeedSequence(seed))
        self._production_model: Optional[RankingModel] = None
        self.cycles_run = 0
        self.reports: List[CycleReport] = []
        # Surface startup repairs (torn index recovered from backup/scan,
        # torn click-log tail dropped) as control-plane events: state the
        # loop healed silently is state an operator never audits.
        if registry.recovery is not None:
            self.cluster.control.events.record(
                "state_recovered",
                self._now(),
                component="registry",
                source=str(registry.recovery.get("source")),
                versions=len(registry.recovery.get("versions", ())),
            )
        if self.click_log.dropped_records:
            self.cluster.control.events.record(
                "state_recovered",
                self._now(),
                component="click_log",
                sessions=self.click_log.recovered_sessions,
                dropped=self.click_log.dropped_records,
            )

    # ------------------------------------------------------------------
    # deployment plumbing
    # ------------------------------------------------------------------
    @property
    def production_model(self) -> Optional[RankingModel]:
        """The model instance the fleet currently serves."""
        return self._production_model

    @property
    def production_version(self) -> Optional[int]:
        entry = self.registry.production
        return None if entry is None else entry.version

    def bootstrap(self) -> int:
        """Register + deploy the trainer's (offline-trained) model as v1.

        The seed model takes the same path every later refresh takes —
        checkpoint, registry, fresh serving copy, hot swap — so offline and
        online serving are the same code path from the first query on.
        """
        if self.registry.production is not None:
            raise RuntimeError("loop already bootstrapped (production exists)")
        entry = self.registry.register(self.trainer.model, trainer=self.trainer)
        self.registry.promote(entry.version)
        self._deploy(entry.version)
        return entry.version

    def _deploy(self, version: int) -> None:
        """Load a fresh serving copy of ``version`` and swap it in."""
        serving_copy = self.model_factory()
        self.registry.load_into(version, serving_copy)
        self.cluster.swap_model(serving_copy, self.registry.label(version))
        self._production_model = serving_copy

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else time.time()

    def _sleep(self, seconds: float) -> None:
        if self.clock is not None:
            self.clock.advance(seconds)
        else:  # pragma: no cover - wall-clock path
            time.sleep(seconds)

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _with_retry(self, stage: str, fn: Callable[[], object]):
        """Run ``fn``, retrying :class:`TransientFault` with backoff.

        Each retry records a typed ``retry`` control-plane event; the last
        attempt's fault re-raises (the cycle then fails loudly rather than
        promoting on a half-run stage).
        """
        last: Optional[TransientFault] = None
        for attempt in range(self.retry_attempts):
            try:
                return fn()
            except TransientFault as exc:
                last = exc
                self.cluster.control.events.record(
                    "retry",
                    self._now(),
                    stage=stage,
                    attempt=attempt + 1,
                    max_attempts=self.retry_attempts,
                )
                if attempt + 1 < self.retry_attempts:
                    self._sleep(self.retry_backoff_s * (2.0**attempt))
        raise last

    def _recover_failed_deploy(
        self,
        entry,
        parent: Optional[int],
        exc: Exception,
        report: CycleReport,
    ) -> None:
        """A promotion failed partway — restore the parent everywhere.

        Reached when :meth:`_deploy` raised after ``promote``: either the
        candidate's checkpoint failed its integrity check
        (:class:`CorruptCheckpointError` — the fleet was never touched) or
        the hot swap crashed mid-drain (:class:`SwapFailed` — the cluster
        already rolled its shards back).  In both cases the fleet still
        serves the parent; what needs repair is the *registry* (production
        pointer moved to the failed candidate) and the *training twin*
        (its weights are the failed candidate's — left in place they would
        silently become the base of every future refresh).
        """
        corrupt = isinstance(exc, CorruptCheckpointError)
        if parent is not None:
            self.registry.promote(parent)
        if corrupt:
            self.registry.quarantine(entry.version)
            self.cluster.control.events.record(
                "quarantine", self._now(), version=entry.version, reason=str(exc)[:200]
            )
        else:
            self.registry.reject(entry.version)
        if parent is not None:
            # Roll the training twin back to the production lineage.  A
            # quarantined candidate's *checkpoint* is damaged but the
            # trainer's in-memory weights are not — they are still rolled
            # back because an undeployable candidate must not seed the next.
            self.registry.load_into(parent, self.trainer.model, trainer=self.trainer)
        self.cluster.control.events.record(
            "rollback",
            self._now(),
            version=entry.version,
            restored=parent,
            reason=f"deploy_failed:{type(exc).__name__}",
        )
        if self.drift is not None:
            self.drift.reset_live()
        report.rollback = {
            "version": entry.version,
            "restored": parent,
            "reason": f"deploy_failed:{type(exc).__name__}",
            "quarantined": corrupt,
        }

    def _auto_rollback(self, rule: str, report: CycleReport) -> None:
        """An alert fired inside the watch window: demote the fresh version.

        The watched version passed its canary but is misbehaving in
        production (shed rate up, fallback share up, breakers opening);
        production, the registry, and the training twin all return to the
        promotion's parent.  The rolled-back version is marked ``rejected``
        — its metrics were fine, its behaviour was not.
        """
        watch = self._watch
        self._watch = None
        parent = watch["parent"]
        if parent is None:  # a bootstrap deployment has nothing to return to
            return
        self.registry.promote(parent)
        self.registry.reject(watch["version"])
        self._deploy(parent)
        self.registry.load_into(parent, self.trainer.model, trainer=self.trainer)
        self.cluster.control.events.record(
            "rollback",
            self._now(),
            version=watch["version"],
            restored=parent,
            reason=f"alert:{rule}",
        )
        if self.drift is not None:
            self.drift.reset_live()
        report.rollback = {
            "version": watch["version"],
            "restored": parent,
            "reason": f"alert:{rule}",
            "quarantined": False,
        }

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def serve_and_log(self, events: Sequence[TrafficEvent]) -> List[RankedList]:
        """Replay ``events`` through the fleet, simulating + logging clicks.

        Event times are relative ("seconds since traffic start"), but the
        loop's :class:`ManualClock` spans *all* cycles and never moves
        backwards — so each cycle's events are re-based onto the current
        clock.  Without this, every cycle after the first would replay in
        the clock's past: deadline flushes would never fire and click
        timestamps would freeze.
        """
        events = list(events)
        if self.clock is not None:
            base = self.clock.now()
            events = [
                TrafficEvent(base + event.time, event.user, event.query_category)
                for event in events
            ]
        results = replay(self.cluster, events, clock=self.clock)
        for ranking in results:
            shown = self.click_model.shown_positions(ranking)
            clicks = self.click_model.clicks(ranking)
            self.click_log.log_session(
                ranking.user,
                ranking.query_category,
                ranking.items[:shown],
                clicks,
                model_version=ranking.model_version,
                timestamp=self._now(),
            )
            if self.drift is not None:
                self._observe_drift(ranking, shown, clicks)
        return results

    def _observe_drift(self, ranking: RankedList, shown: int, clicks: np.ndarray) -> None:
        """Stream one served session's features into the live drift sketches.

        The feature set covers the three drift surfaces worth alarming on:
        *behaviour* (session CTR), *model output* (mean/top predicted score
        and the |score − CTR| calibration gap — a model can keep its score
        distribution while its calibration walks away), and *inventory
        exposure* (price/popularity of what was actually shown, which moves
        when user interests rotate onto different catalog regions).
        """
        drift = self.drift
        scores = ranking.scores[:shown]
        ctr = float(clicks.mean()) if clicks.size else 0.0
        mean_score = float(scores.mean()) if scores.size else 0.0
        drift.observe("ctr", ctr)
        drift.observe("mean_score", mean_score)
        drift.observe("top_score", float(ranking.scores[0]) if ranking.scores.size else 0.0)
        drift.observe("calibration_gap", abs(mean_score - ctr))
        shown_items = ranking.items[:shown]
        if shown_items.size:
            drift.observe("price", float(self.world.item_price_pct[shown_items].mean()))
            drift.observe(
                "popularity", float(self.world.item_popularity[shown_items].mean())
            )

    def _score_drift_and_alert(self, report: CycleReport) -> None:
        """Score this cycle's live window vs the reference; evaluate alerts.

        Runs right after serving — *before* training — so a drifted window
        alarms in the same cycle it was served, whether or not the refresh
        goes on to promote.  Scores land as a ``drift_score`` control-plane
        event; alert transitions record their own typed events.
        """
        now = self._now()
        if self.drift is not None and self.drift.has_reference:
            report.drift = self.drift.scores()
            worst_name, worst_psi = self.drift.worst()
            self.cluster.control.events.record(
                "drift_score",
                now,
                worst_feature=worst_name,
                worst_psi=round(worst_psi, 4),
                **{
                    f"psi_{name}": round(scores["psi"], 4)
                    for name, scores in report.drift.items()
                },
            )
        if self.alerts is not None:
            merged = self.cluster.merged_metrics()
            extra = {
                "click_log_lag": float(self.click_log.lag),
                # Resilience telemetry: the degradation ladder and breaker
                # state are alertable (and drive the watch-window rollback).
                "shed_rate": float(merged.shed_rate),
                "degraded_share": float(merged.degraded_share),
                "open_breakers": float(self.cluster.open_breakers),
            }
            shadow = getattr(self.cluster, "shadow_recall", None)
            if shadow is not None and shadow.samples:
                extra["retrieval_recall_at_k"] = shadow.recall_at_k
            snapshot = telemetry_snapshot(
                registry=self.trainer.metrics,
                slo=self.cluster.slo,
                drift=self.drift,
                extra=extra,
            )
            transitions = self.alerts.evaluate(snapshot, now)
            if transitions:
                report.alerts = [
                    {
                        "rule": transition.rule.name,
                        "action": transition.action,
                        "value": transition.value,
                    }
                    for transition in transitions
                ]
            fired = [t.rule.name for t in transitions if t.action == "fired"]
            if (
                fired
                and self._watch is not None
                and self.cycles_run < self._watch["until"]
                and self.production_version == self._watch["version"]
            ):
                self._auto_rollback(fired[0], report)
        if self._watch is not None and self.cycles_run >= self._watch["until"]:
            self._watch = None  # watch window expired cleanly

    def run_cycle(self, events: Sequence[TrafficEvent]) -> CycleReport:
        """One full refresh cycle; returns its audit report.

        A cycle with no usable feedback (no events, or no session with both
        a click and a skip) trains nothing and leaves production untouched.
        """
        if self.registry.production is None:
            raise RuntimeError("call bootstrap() before running cycles")
        cycle = self.cycles_run
        trace = self.tracer.trace("refresh", cycle=cycle)
        with trace.span("serve", events=len(events)):
            results = self.serve_and_log(events)

        lag = self.click_log.lag
        self.cluster.control.record_log_lag(lag)

        report = CycleReport(
            cycle=cycle,
            queries_served=len(results),
            sessions_logged=0,
            clicks=0,
            log_lag=lag,
            train_rows=0,
            production_version=self.production_version,
        )
        # Drift is judged on what was just *served* — before training, so a
        # drifted window alarms this cycle even if the refresh then fails.
        self._score_drift_and_alert(report)

        with trace.span("read_new") as read_span:
            records = self.click_log.read_new()
            holdout_rows = set(
                range(self.holdout_every - 1, len(records), self.holdout_every)
            )
            holdout_records = [records[i] for i in sorted(holdout_rows)]
            train_records = [
                record for i, record in enumerate(records) if i not in holdout_rows
            ]
            train_set = build_dataset(self.world, train_records, rng=self._neg_rng)
            holdout_set = build_dataset(self.world, holdout_records)
            read_span.set(
                sessions=len(records),
                train_rows=0 if train_set is None else len(train_set),
                holdout_rows=0 if holdout_set is None else len(holdout_set),
            )

        report.sessions_logged = len(records)
        report.clicks = int(sum(record.num_clicks for record in records))
        report.train_rows = 0 if train_set is None else len(train_set)
        self.cycles_run += 1
        if train_set is None:
            if self.drift is not None:
                self.drift.reset_live()
            trace.finish(promoted=False, reason="no_usable_feedback")
            self.reports.append(report)
            return report

        # Incremental warm-start training on the fresh window.
        parent = self.production_version
        window = (records[0].session_id, records[-1].session_id + 1)
        with trace.span("train", rows=len(train_set), epochs=self.trainer.config.epochs):
            self._with_retry("train", lambda: self.trainer.update(train_set, trace=trace))
        with trace.span("register") as register_span:
            entry = self.registry.register(
                self.trainer.model, parent=parent, window=window, trainer=self.trainer
            )
            register_span.set(version=self.registry.label(entry.version))
        report.candidate_version = entry.version

        # Canary: candidate vs production on the held-out sessions.  With no
        # usable holdout this cycle, promotion proceeds on the training
        # evidence alone (tiny-traffic regime; the verdict is still logged).
        if holdout_set is not None:
            with trace.span(
                "canary", version=self.registry.label(entry.version)
            ) as canary_span:
                report.canary = self._with_retry(
                    "canary",
                    lambda: self.canary.judge(
                        self.trainer.model,
                        self._production_model,
                        holdout_set,
                        trace=trace,
                    ),
                )
                canary_span.set(passed=report.canary.passed)
            passed = report.canary.passed
            # The verdict lands in the fleet's control-plane event log with
            # the candidate's label and — when the retrieval probe ran — its
            # measured cascade recall (a separate recall_probe event).
            candidate_metrics = report.canary.candidate
            recall = (
                candidate_metrics.get("retrieval_recall")
                if isinstance(candidate_metrics, dict)
                else None
            )
            self.cluster.control.record_canary(
                passed, version=self.registry.label(entry.version), recall=recall
            )
        else:
            passed = True
        if passed:
            metrics = None if report.canary is None else report.canary.candidate
            deployed = False
            with trace.span("swap", version=self.registry.label(entry.version)) as swap_span:
                self.registry.promote(entry.version, metrics=metrics)
                try:
                    self._deploy(entry.version)
                    deployed = True
                except (SwapFailed, CorruptCheckpointError) as exc:
                    # The candidate passed its canary but cannot actually
                    # serve (corrupt checkpoint, mid-swap crash).  Restore
                    # the parent everywhere and report the cycle unpromoted.
                    swap_span.set(failed=type(exc).__name__)
                    self._recover_failed_deploy(entry, parent, exc, report)
            if deployed:
                self._watch = {
                    "version": entry.version,
                    "parent": parent,
                    "until": self.cycles_run + self.watch_cycles,
                }
                if self.drift is not None:
                    # The live window just served is the click-log window the
                    # promoted candidate trained on: freeze it as the new
                    # production model's training-time reference.
                    self.drift.freeze_reference()
            passed = deployed
        else:
            with trace.span("rollback", version=self.registry.label(entry.version)):
                self.registry.reject(entry.version, metrics=report.canary.candidate)
                # Roll the training twin back to the production lineage: a
                # bad update must not become the base of the next candidate
                # (it would poison every future refresh while the registry
                # claimed clean descent from production).  Loop-managed
                # versions always carry full training state, so optimizer
                # moments roll back too.
                self.registry.load_into(parent, self.trainer.model, trainer=self.trainer)
            if self.drift is not None:
                # Production did not change; next cycle compares its own
                # window against the same reference, not an accumulation.
                self.drift.reset_live()
        report.promoted = passed
        report.production_version = self.production_version
        trace.finish(
            promoted=passed,
            version=self.registry.label(entry.version),
            sessions=len(records),
        )
        self.reports.append(report)
        return report
