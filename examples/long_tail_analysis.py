"""Long-tail user analysis: why contrastive learning helps sparse histories.

Reproduces the paper's §III-D motivation at example scale:

1. trains AW-MoE with and without the contrastive loss;
2. buckets test impressions by behaviour-sequence length;
3. shows the CL gain concentrated on the short-history buckets;
4. visualizes the gate representations of user groups (Fig. 7 style) with
   the built-in t-SNE and prints cluster separation scores.

Run:  python examples/long_tail_analysis.py
"""

import numpy as np

from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig, make_search_datasets
from repro.eval import (
    TSNEParams,
    fig7_user_groups,
    nearest_centroid_purity,
    predict_scores,
    tsne,
)
from repro.eval.auc import session_auc
from repro.utils import SeedBank, format_float, print_table


def main() -> None:
    print("Generating synthetic search world ...")
    world, train, test = make_search_datasets(
        WorldConfig.small(), num_train_sessions=3000, num_test_sessions=800, seed=2
    )
    bank = SeedBank(23)
    base_config = TrainConfig(epochs=2, batch_size=256, learning_rate=1.5e-3)

    print("Training AW-MoE without contrastive learning ...")
    plain = build_model("aw_moe", ModelConfig.small(), train.meta, bank.child("plain"))
    train_model(plain, train, base_config, seed=3)

    print("Training AW-MoE with contrastive learning (p=0.1, l=3, lambda=0.05) ...")
    contrastive = build_model("aw_moe", ModelConfig.small(), train.meta, bank.child("cl"))
    train_model(contrastive, train, base_config.with_contrastive(), seed=3)

    # Bucket the test set by history length and compare AUC per bucket.
    lengths = test.behavior_lengths()
    buckets = [(0, 0, "0 (new users)"), (1, 3, "1-3"), (4, 8, "4-8"), (9, 99, "9+")]
    rows = []
    for low, high, label in buckets:
        mask = (lengths >= low) & (lengths <= high)
        subset = test.subset(np.flatnonzero(mask))
        if len(subset) < 50:
            continue
        try:
            auc_plain = session_auc(predict_scores(plain, subset), subset.label, subset.session_id)
            auc_cl = session_auc(
                predict_scores(contrastive, subset), subset.label, subset.session_id
            )
        except ValueError:
            continue
        rows.append(
            [label, f"{len(subset):,}", format_float(auc_plain), format_float(auc_cl),
             f"{(auc_cl - auc_plain) * 100:+.2f}"]
        )
    print_table(
        ["History length", "impressions", "AW-MoE AUC", "AW-MoE & CL AUC", "CL gain (pts)"],
        rows,
        title="Contrastive-learning gain by user history length",
    )

    # Fig. 7-style study: embed gate outputs, score group separation.
    sample = np.arange(min(500, len(test)))
    batch = test.batch_at(sample)
    gates = contrastive.gate_outputs(batch)
    groups = fig7_user_groups(
        lengths[sample],
        batch["other_features"][:, test.meta.feature_index("item_click_cnt")],
    )
    coords = tsne(gates, TSNEParams(num_iters=250), rng=np.random.default_rng(0))
    purity = nearest_centroid_purity(coords, groups)
    names = {0: "new users", 1: "old w/o target order", 2: "old w/ target order"}
    counts = [[names[g], int((groups == g).sum())] for g in np.unique(groups)]
    print_table(["User group", "count"], counts, title="Fig. 7 groups in the t-SNE sample")
    print(f"t-SNE centroid purity across user groups: {purity:.3f}")
    print("First five 2-D coordinates:", np.round(coords[:5], 2).tolist())


if __name__ == "__main__":
    main()
