"""Recommendation-mode example: the paper's Amazon-protocol experiment.

There is no query in recommendation, so AW-MoE's gate consumes the target
item instead (§IV-A2).  This script builds the leave-one-out review dataset,
trains DIN and AW-MoE & CL, and reports the overall AUC of Table V.

Run:  python examples/recommendation.py
"""

from dataclasses import replace

from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig
from repro.data.amazon import make_amazon_datasets
from repro.eval import predict_scores
from repro.eval.auc import global_auc
from repro.utils import SeedBank, format_float, print_table


def main() -> None:
    print("Generating synthetic review world (leave-one-out protocol) ...")
    world_config = replace(WorldConfig.small(), num_users=5000)
    world, train, test = make_amazon_datasets(world_config, seed=4)
    print(f"  train: {len(train):,} rows ({train.num_users():,} users)")
    print(f"  test:  {len(test):,} rows ({test.num_users():,} users, disjoint)")

    bank = SeedBank(31)
    model_config = ModelConfig.small(task="reco")
    train_config = TrainConfig(epochs=2, batch_size=256, learning_rate=1.5e-3)

    rows = []
    for name, label, contrastive in [
        ("din", "DIN", False),
        ("aw_moe", "AW-MoE & CL", True),
    ]:
        print(f"Training {label} ...")
        config = train_config.with_contrastive() if contrastive else train_config
        model = build_model(name, model_config, train.meta, bank.child(label))
        train_model(model, train, config, seed=6)
        auc = global_auc(predict_scores(model, test), test.label)
        rows.append([label, format_float(auc)])

    print_table(
        ["Model", "overall AUC"],
        rows,
        title="Table V protocol — predict each user's last reviewed item",
    )


if __name__ == "__main__":
    main()
