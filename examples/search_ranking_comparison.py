"""Search-ranking model comparison: the paper's Table II/III experiment
at example scale.

Trains all five compared models (DNN, DIN, Category-MoE, AW-MoE,
AW-MoE & CL) on the synthetic JD-like search world and evaluates them on the
full test set and both long-tail splits, printing tables in the paper's
layout with bootstrap p-values.

Run:  python examples/search_ranking_comparison.py
"""

import numpy as np

from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig, make_search_datasets
from repro.data.splits import standard_test_splits
from repro.eval import evaluate_ranking, paired_bootstrap_pvalue, predict_scores
from repro.utils import SeedBank, format_float, print_table

MODELS = ["dnn", "din", "category_moe", "aw_moe", "aw_moe_cl"]
LABELS = {
    "dnn": "DNN",
    "din": "DIN",
    "category_moe": "Category-MoE",
    "aw_moe": "AW-MoE",
    "aw_moe_cl": "AW-MoE & CL",
}


def main() -> None:
    print("Generating synthetic search world ...")
    world, train, test = make_search_datasets(
        WorldConfig.small(), num_train_sessions=3000, num_test_sessions=800, seed=1
    )
    splits = standard_test_splits(test)
    bank = SeedBank(11)
    train_config = TrainConfig(epochs=2, batch_size=256, learning_rate=1.5e-3)

    trained = {}
    for name in MODELS:
        build_name = "aw_moe" if name == "aw_moe_cl" else name
        config = train_config.with_contrastive() if name == "aw_moe_cl" else train_config
        print(f"Training {LABELS[name]} ...")
        model = build_model(build_name, ModelConfig.small(), train.meta, bank.child(name))
        train_model(model, train, config, seed=5)
        trained[name] = model

    for split_name, split in splits.items():
        scores = {name: predict_scores(model, split) for name, model in trained.items()}
        rows = []
        for name in MODELS:
            metrics = evaluate_ranking(trained[name], split, scores=scores[name])
            p_value = "-"
            if name != "dnn":
                p = paired_bootstrap_pvalue(
                    scores["dnn"], scores[name], split.label, split.session_id,
                    num_resamples=300, rng=np.random.default_rng(0),
                )
                p_value = f"{p:.3f}"
            rows.append(
                [
                    LABELS[name],
                    format_float(metrics["auc"]),
                    format_float(metrics["auc@10"]),
                    format_float(metrics["ndcg"]),
                    format_float(metrics["ndcg@10"]),
                    p_value,
                ]
            )
        print_table(
            ["Model", "AUC", "AUC@10", "NDCG", "NDCG@10", "p vs DNN"],
            rows,
            title=f"Results on split: {split_name} "
            f"({split.num_sessions():,} sessions, {len(split):,} impressions)",
        )


if __name__ == "__main__":
    main()
