"""Online learning loop demo: serve → click log → retrain → canary → hot-swap.

Walks the full feedback loop the deployed AW-MoE lives in (§III-F): an
offline-trained seed model is registered and deployed to a sharded serving
fleet; Zipf traffic is replayed through it; a position-biased click model
simulates user feedback on the served rankings; the click log is consumed by
a warm-start incremental trainer; every refreshed candidate is canaried
against production on held-out sessions; and promoted versions are
hot-swapped into the fleet between micro-batches — with the session gate
cache invalidated so no stale gate vector survives a version switch.

The world drifts between cycles, so the frozen seed decays while the loop
keeps up.  At the end, a deliberately corrupted candidate demonstrates the
canary gate blocking a bad deployment.

Run:  python examples/online_loop_demo.py
"""

import tempfile
from dataclasses import replace


from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig, drift_world, make_search_datasets
from repro.data.synthetic import build_test_dataset, simulate_search_log
from repro.eval import evaluate_ranking
from repro.online import (
    CanaryGate,
    IncrementalTrainer,
    ModelRegistry,
    OnlineLoop,
    PositionBiasedClickModel,
)
from repro.serving import ManualClock, ShardedCluster, ZipfLoadGenerator
from repro.utils import SeedBank, print_table

NUM_CYCLES = 3
QUERIES_PER_CYCLE = 500
SEED = 31


def main() -> None:
    bank = SeedBank(SEED)
    print("Generating world and training the offline seed model ...")
    world, warmup_train, _ = make_search_datasets(
        WorldConfig.small(), num_train_sessions=600, num_test_sessions=100, seed=SEED
    )
    model_config = ModelConfig.small()
    train_config = TrainConfig(epochs=1, batch_size=128, learning_rate=1.5e-3)
    refresh_config = replace(train_config, epochs=2)  # two passes per click window

    def factory(tag="serving"):
        return build_model("aw_moe", model_config, warmup_train.meta, bank.child(f"model-{tag}"))

    seed_model = factory("seed")
    train_model(seed_model, warmup_train, train_config, seed=7)
    frozen = factory("frozen")
    frozen.load_state_dict(seed_model.state_dict())

    # --- assemble the loop --------------------------------------------
    clock = ManualClock()
    cluster = ShardedCluster(
        world, seed_model, num_shards=2, seed=SEED,
        max_batch_size=8, flush_deadline_ms=10.0, cache_capacity=1024, clock=clock,
    )
    registry_dir = tempfile.mkdtemp(prefix="awmoe-registry-")
    loop = OnlineLoop(
        world=world,
        cluster=cluster,
        trainer=IncrementalTrainer(seed_model, refresh_config, seed=SEED),
        model_factory=factory,
        registry=ModelRegistry(registry_dir, clock=clock),
        canary=CanaryGate(tolerance=0.02),
        click_model=PositionBiasedClickModel(world, bank.child("clicks")),
        clock=clock,
        seed=SEED,
    )
    version = loop.bootstrap()
    print(f"Bootstrapped: registered + deployed v{version:04d} "
          f"(registry at {registry_dir})")

    # --- refresh cycles under drift ------------------------------------
    drift_rng = bank.child("drift")
    rows = []
    for cycle in range(NUM_CYCLES):
        if cycle > 0:
            drift_world(world, drift_rng, interest_drift=0.1, trend_drift=0.3)
        events = ZipfLoadGenerator(
            bank.child(f"traffic-{cycle}"), world=world, target_qps=300.0
        ).generate(QUERIES_PER_CYCLE)
        report = loop.run_cycle(events)
        canary = report.canary
        rows.append([
            str(report.cycle),
            str(report.queries_served),
            str(report.clicks),
            f"v{report.candidate_version:04d}",
            "-" if canary is None else f"{canary.candidate['auc']:.4f}",
            "promoted + hot-swapped" if report.promoted else "rejected by canary",
        ])
    print_table(
        ["Cycle", "Queries", "Clicks", "Candidate", "Canary AUC", "Outcome"],
        rows,
        title="Refresh cycles (drifting world)",
    )

    # --- canary blocks a corrupted candidate ---------------------------
    corrupted = factory("corrupted")
    corrupted.load_state_dict(loop.trainer.model.state_dict())
    rng = bank.child("noise")
    for param in corrupted.parameters():
        param.data += rng.normal(0, 1.0, size=param.data.shape).astype(param.data.dtype)
    holdout = build_test_dataset(simulate_search_log(world, 150, bank.child("holdout")))
    verdict = loop.canary.judge(corrupted, loop.production_model, holdout)
    print(f"\nCorrupted candidate vs production: {verdict}")
    assert not verdict.passed

    # --- final comparison ----------------------------------------------
    final_eval = build_test_dataset(simulate_search_log(world, 200, bank.child("eval")))
    frozen_metrics = evaluate_ranking(frozen, final_eval)
    online_metrics = evaluate_ranking(loop.production_model, final_eval)
    print_table(
        ["Model", "AUC", "NDCG"],
        [
            ["frozen offline seed", f"{frozen_metrics['auc']:.4f}", f"{frozen_metrics['ndcg']:.4f}"],
            [f"online loop ({cluster.model_version})",
             f"{online_metrics['auc']:.4f}", f"{online_metrics['ndcg']:.4f}"],
        ],
        title="Post-drift evaluation",
    )
    fleet = cluster.summary()
    print(f"\nFleet: {fleet['queries']} queries, "
          f"{fleet['online']['swaps']} hot swaps, "
          f"{fleet['online']['canary_passes']} canary passes / "
          f"{fleet['online']['canary_failures']} failures, "
          f"gate-cache hit rate {fleet['cache']['hit_rate']:.1%}")
    print("Registry audit trail:")
    for entry in loop.registry.versions:
        print(f"  v{entry.version:04d}  parent={entry.parent}  "
              f"window={entry.window}  status={entry.status}")


if __name__ == "__main__":
    main()
