"""Quickstart: generate data, train AW-MoE with contrastive learning,
evaluate with the paper's metrics, and save a checkpoint.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig, make_search_datasets
from repro.eval import evaluate_ranking
from repro.nn import save_module
from repro.utils import SeedBank, format_float, print_table


def main() -> None:
    # 1. A synthetic e-commerce search world: users with latent shopping
    #    archetypes, items with categories/brands/prices, logged sessions.
    print("Generating synthetic search world ...")
    world, train, test = make_search_datasets(
        WorldConfig.small(), num_train_sessions=2000, num_test_sessions=500, seed=0
    )
    print(f"  train: {len(train):,} impressions ({train.num_sessions():,} sessions, 1:1)")
    print(f"  test:  {len(test):,} impressions ({test.num_sessions():,} sessions)")

    # 2. Build AW-MoE (paper architecture, CPU-scale expert widths).
    bank = SeedBank(42)
    model = build_model("aw_moe", ModelConfig.small(), train.meta, bank.child("model"))
    print(f"AW-MoE with {model.config.num_experts} experts, "
          f"{model.num_parameters():,} parameters")

    # 3. Train with the combined objective L_rank + λ·L_cl (Eq. 11).
    config = TrainConfig(epochs=2, batch_size=256, learning_rate=1.5e-3).with_contrastive(
        mask_prob=0.1, num_negatives=3, cl_weight=0.05
    )
    log = train_model(model, train, config, seed=7)
    print(f"Trained {len(log)} steps; final loss {log.last('loss'):.4f} "
          f"(contrastive part {log.last('cl_loss'):.4f})")

    # 4. Evaluate with the paper's session-level metrics (Eq. 12-13).
    metrics = evaluate_ranking(model, test)
    print_table(
        ["Metric", "Value"],
        [[name, format_float(value)] for name, value in metrics.items()],
        title="AW-MoE & CL on the synthetic full test set",
    )

    # 5. Inspect the gate: which experts does this user activate?
    batch = test.batch_at(np.arange(4))
    gates = model.gate_outputs(batch)
    for i, gate in enumerate(gates):
        top = int(np.argmax(gate))
        print(f"impression {i}: gate={np.round(gate, 3)} -> strongest expert {top}")

    # 6. Save a checkpoint.
    save_module(model, "/tmp/aw_moe_quickstart")
    print("Checkpoint written to /tmp/aw_moe_quickstart.npz")


if __name__ == "__main__":
    main()
