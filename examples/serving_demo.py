"""Serving demo: the online system of Fig. 6 and the §III-F optimization.

Builds the retrieval + ranking engine over a trained AW-MoE, serves live
queries, reports latency, prints the gate-cost comparison between the
initial (gate-per-item) and deployed (gate-per-session) designs, drives the
high-throughput stack (Zipf traffic → sharded workers → micro-batching →
cached session gates) with full observability — request tracing, a fleet
SLO, and the ``fleet_report()`` dashboard — and runs a small A/B test of
AW-MoE against Category-MoE.

Run:  python examples/serving_demo.py
"""

import numpy as np

from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig, make_search_datasets
from repro.obs import SloTracker, Tracer
from repro.serving import (
    SearchEngine,
    ShardedCluster,
    ZipfLoadGenerator,
    compare_gate_strategies,
    replay,
    run_ab_test,
)
from repro.utils import SeedBank, print_table


def main() -> None:
    print("Generating world and training rankers ...")
    world, train, test = make_search_datasets(
        WorldConfig.small(), num_train_sessions=2000, num_test_sessions=300, seed=5
    )
    bank = SeedBank(47)
    config = TrainConfig(epochs=2, batch_size=256, learning_rate=1.5e-3)

    category_moe = build_model("category_moe", ModelConfig.small(), train.meta, bank.child("cat"))
    train_model(category_moe, train, config, seed=8)
    aw_moe = build_model("aw_moe", ModelConfig.small(), train.meta, bank.child("aw"))
    train_model(aw_moe, train, config.with_contrastive(), seed=8)

    # --- serve a few live queries -------------------------------------
    engine = SearchEngine(world, aw_moe, np.random.default_rng(1))
    print("\nServing five queries through the engine:")
    for user in range(5):
        category = int(np.argmax(world.user_interests[user]))
        ranking = engine.search(user, category)
        top = ranking.items[:3] + 1
        print(
            f"  user {user} searched category {category}: top items {list(top)}"
            f" ({ranking.latency_ms:.1f} ms)"
        )
    print(f"Mean latency: {engine.avg_latency_ms:.1f} ms/query "
          "(paper: ~20 ms on a production cluster)")

    # --- §III-F gate optimization -------------------------------------
    report = compare_gate_strategies(
        ModelConfig.paper(), test.meta, items_per_session=40, seq_len=1000
    )
    print_table(
        ["Design", "gate evals/session", "gate MFLOPs/session"],
        [
            ["initial (gate per item)", "40", f"{report.gate_flops * 40 / 1e6:.1f}"],
            ["deployed (gate per session)", "1", f"{report.gate_flops / 1e6:.1f}"],
        ],
        title="Gate-network cost (paper layer sizes, 1000-item history)",
    )
    print(f"Gate-resource saving: {report.gate_saving_factor:.0f}x (paper: >10x)")

    # --- high-throughput stack: shards + micro-batching + gate cache ---
    # One tracer samples 10% of requests into bounded in-memory span trees;
    # one SLO tracker watches sliding-window p99 and error-budget burn.
    print("\nReplaying 300 Zipf-distributed queries through a 4-shard cluster ...")
    tracer = Tracer(sample_rate=0.1, seed=3)
    slo = SloTracker(latency_slo_ms=100.0, availability_target=0.99)
    cluster = ShardedCluster(
        world, aw_moe, num_shards=4, seed=21, max_batch_size=16,
        flush_deadline_ms=50.0, tracer=tracer, slo=slo,
    )
    events = ZipfLoadGenerator(
        np.random.default_rng(13), world=world, zipf_exponent=1.2
    ).generate(300)
    replay(cluster, events)
    print(cluster.fleet_report())
    if tracer.finished:
        last = tracer.finished[-1]
        print(f"\nOne sampled request trace ({last['name']}, "
              f"{last['duration_ms']:.1f} ms):")
        for span in last["spans"]:
            indent = "    " if span["parent"] is not None else "  "
            print(f"{indent}{span['name']:<14} {span['duration_ms']:8.3f} ms")

    # --- §IV-I A/B test -------------------------------------------------
    print("\nRunning simulated A/B test (Category-MoE control vs AW-MoE & CL) ...")
    result = run_ab_test(world, category_moe, aw_moe, num_users=400, seed=9)
    print_table(
        ["Metric", "control", "treatment", "lift", "p-value"],
        [
            ["UCTR", f"{result.uctr_a:.4f}", f"{result.uctr_b:.4f}",
             f"{result.uctr_lift * 100:+.2f}%", f"{result.uctr_p_value:.4f}"],
            ["UCVR", f"{result.ucvr_a:.4f}", f"{result.ucvr_b:.4f}",
             f"{result.ucvr_lift * 100:+.2f}%", f"{result.ucvr_p_value:.4f}"],
        ],
        title="Simulated online A/B test",
    )


if __name__ == "__main__":
    main()
