"""Retrieval-cascade benchmark: sublinear serving on a large catalog.

The paper's deployment (§III-F, Fig. 6) puts the AW-MoE ranker behind a
candidate generator; scoring the whole catalog with the full model is linear
in catalog size.  This benchmark builds a catalog-dominated world
(:meth:`WorldConfig.large_catalog`, ~10k items per category), trains an
AW-MoE on it, and compares:

* **exhaustive** — the full compiled model scores every item of the query
  category (the pre-cascade pipeline with ``candidates_per_query`` opened to
  the whole catalog);
* **cascade** — the two-stage retrieval cascade (:mod:`repro.retrieval`):
  IVF ANN index over the model's item vectors → calibrated linear prefilter
  → full model on the K survivors.

Acceptance: **>= 5x end-to-end QPS** with **recall@10 >= 0.95** against the
exhaustive oracle's top-10, on identical Zipf traffic.  Recall is
deterministic given the seed and is asserted in every mode; the QPS ratio
is hard-asserted on quiet machines (``STRICT_TIMING``) and direction-checked
elsewhere.  The artifact (``retrieval_cascade.json``) feeds the regression
gate against the checked-in reference: **recall hard-gates** (>20% down
warns, >30% fails — ``REPRO_ALLOW_REGRESSION=1`` to override); the
wall-clock speedup ratio is warn-only there, because the acceptance block
below already owns its pass/fail policy per machine class.

``REPRO_SMOKE=1`` shrinks the catalog and query counts so CI exercises the
whole path on every push (its artifact goes to ``*_smoke.json``).
"""

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np

from _helpers import compare_to_artifact
from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig
from repro.data.synthetic import build_train_dataset, generate_world, simulate_search_log
from repro.obs import ShadowRecallMonitor
from repro.retrieval import CascadeConfig, RetrievalProbe
from repro.serving import (
    SearchEngine,
    ShardedCluster,
    ZipfLoadGenerator,
    compare_retrieval_strategies,
    replay,
)
from repro.utils import SeedBank, print_table

SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"
STRICT_TIMING = not SMOKE and not os.environ.get("CI")
_SUFFIX = "_smoke" if SMOKE else ""
ARTIFACT = Path(__file__).parent / "artifacts" / f"retrieval_cascade{_SUFFIX}.json"
REFERENCE = Path(__file__).parent / "reference" / "retrieval_cascade.json"

#: Catalog scale: >= 100k items in full mode (acceptance floor).  Smoke
#: keeps the same ~10k items-per-category shape and only drops categories,
#: so the speedup ratio (which is governed by category size / survivors)
#: stays comparable to the full-mode reference artifact the gate reads.
NUM_ITEMS = 30_000 if SMOKE else 120_000
NUM_CATEGORIES = 3 if SMOKE else 12
#: Training budget: the cascade serves a *converged* ranker (the realistic
#: regime — a half-trained model's catalog-tail ranking is noise no
#: candidate generator could anticipate), so smoke mode keeps the epochs
#: and only slims the catalog and query count.
TRAIN_SESSIONS = 4000 if SMOKE else 8000
NUM_QUERIES = 12 if SMOKE else 40
#: The tuned serving cascade under test.
CASCADE = CascadeConfig(
    retrieve_n=3072,
    prune=1280,
    nprobe=48,
    calibration_queries=256,
    calibration_items=512,
)
RECALL_FLOOR = 0.95


def _recall_at_10(cascade_items: np.ndarray, oracle_top10: np.ndarray) -> float:
    kept = set(cascade_items[:10].tolist())
    return sum(1 for item in oracle_top10.tolist() if item in kept) / oracle_top10.size


def test_retrieval_cascade_speedup_and_recall():
    bank = SeedBank(29)
    world = generate_world(
        WorldConfig.large_catalog(num_items=NUM_ITEMS, num_categories=NUM_CATEGORIES),
        bank.child("world"),
    )
    log = simulate_search_log(world, TRAIN_SESSIONS, bank.child("sessions"))
    train = build_train_dataset(log, bank.child("negatives"))
    model = build_model("aw_moe", ModelConfig.unit(), train.meta, bank.child("model"))
    train_model(
        model, train, TrainConfig(epochs=4, batch_size=256, learning_rate=2e-3), seed=7
    )
    model.eval()
    events = ZipfLoadGenerator(
        np.random.default_rng(17), world=world, zipf_exponent=1.2
    ).generate(NUM_QUERIES)

    # -- exhaustive baseline: full model over the whole query category ----
    exhaustive = SearchEngine(
        world, model, np.random.default_rng(7), candidates_per_query=world.num_items + 1
    )
    build_start = time.perf_counter()
    engine = SearchEngine(world, model, np.random.default_rng(7), cascade=CASCADE)
    build_seconds = time.perf_counter() - build_start

    # Interleaved best-of-2 per path: the speedup is an in-run ratio, but a
    # background hiccup during one short replay can still swamp it; keeping
    # each path's best pass makes the ratio a property of the code.  Recall
    # is deterministic (no RNG in the cascade path) so pass 1's results are
    # the results.
    oracle = {}
    recalls = []
    exhaustive_seconds = cascade_seconds = float("inf")
    for attempt in range(2):
        start = time.perf_counter()
        for event in events:
            result = exhaustive.search(event.user, event.query_category)
            if attempt == 0:
                oracle[(event.user, event.query_category)] = result.items[:10]
        exhaustive_seconds = min(exhaustive_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        for event in events:
            result = engine.search(event.user, event.query_category)
            if attempt == 0:
                recalls.append(
                    _recall_at_10(result.items, oracle[(event.user, event.query_category)])
                )
        cascade_seconds = min(cascade_seconds, time.perf_counter() - start)
    exhaustive_qps = NUM_QUERIES / exhaustive_seconds
    cascade_qps = NUM_QUERIES / cascade_seconds
    recall = float(np.mean(recalls))
    speedup = cascade_qps / exhaustive_qps

    # -- knob sweep: the recall <-> speed trade the cascade exposes -------
    sweep_rows = []
    sweep = [
        ("tight", CascadeConfig(retrieve_n=1024, prune=256, nprobe=8)),
        ("tuned (serving)", CASCADE),
        ("exact stage-1", CASCADE.with_exhaustive_stage1()),
    ]
    sweep_report = []
    for label, config in sweep:
        if config is CASCADE:
            sweep_qps, sweep_recall = cascade_qps, recall
        else:
            swept = SearchEngine(world, model, np.random.default_rng(7), cascade=config)
            swept_recalls = []
            start = time.perf_counter()
            for event in events:
                result = swept.search(event.user, event.query_category)
                swept_recalls.append(
                    _recall_at_10(result.items, oracle[(event.user, event.query_category)])
                )
            sweep_qps = NUM_QUERIES / (time.perf_counter() - start)
            sweep_recall = float(np.mean(swept_recalls))
        sweep_report.append(
            {
                "label": label,
                "nprobe": str(config.nprobe),
                "retrieve_n": config.retrieve_n,
                "prune": config.prune,
                "recall_at_10": sweep_recall,
                "qps": sweep_qps,
            }
        )
        sweep_rows.append(
            [label, str(config.nprobe), str(config.retrieve_n), str(config.prune),
             f"{sweep_recall:.3f}", f"{sweep_qps:.0f}"]
        )

    # -- exhaustive-parity mode: the oracle is bitwise the old pipeline ---
    parity_engine = SearchEngine(
        world,
        model,
        np.random.default_rng(7),
        candidates_per_query=world.num_items + 1,
        cascade=CascadeConfig.exhaustive(),
    )
    probe_event = events[0]
    want = exhaustive.search(probe_event.user, probe_event.query_category)
    got = parity_engine.search(probe_event.user, probe_event.query_category)
    np.testing.assert_array_equal(got.items, want.items)
    np.testing.assert_array_equal(got.scores, want.scores)

    # -- fleet integration: cascade behind the sharded micro-batching stack
    cluster = ShardedCluster(
        world,
        model,
        num_shards=2,
        seed=5,
        max_batch_size=8,
        flush_deadline_ms=50.0,
        cache_capacity=2048,
        cascade=CASCADE,
    )
    # Re-time the exhaustive baseline interleaved with the fleet replay:
    # the fleet-vs-exhaustive gate below compares two wall-clock numbers,
    # and when the suite has been running for minutes the machine drifts —
    # measured minutes apart, that drift can exceed the gate's margin.
    # Interleaved best-of-2 (same rationale as the single-engine section
    # above) makes the ratio a property of the code; the table and speedup
    # still report the earlier numbers.
    adjacent_exhaustive_seconds = fleet_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        for event in events:
            exhaustive.search(event.user, event.query_category)
        adjacent_exhaustive_seconds = min(
            adjacent_exhaustive_seconds, time.perf_counter() - start
        )
        start = time.perf_counter()
        fleet_results = replay(cluster, events)
        fleet_seconds = min(fleet_seconds, time.perf_counter() - start)
    adjacent_exhaustive_qps = NUM_QUERIES / adjacent_exhaustive_seconds
    fleet_qps = NUM_QUERIES / fleet_seconds
    assert len(fleet_results) == NUM_QUERIES
    fleet_recall = float(
        np.mean(
            [
                _recall_at_10(r.items, oracle[(r.user, r.query_category)])
                for r in fleet_results
            ]
        )
    )

    # Shadow-recall acceptance: attach a 100%-rate shadow monitor *after*
    # the timed replay (a full-rate oracle re-run per query would dominate
    # the QPS measurement; production runs at ~0.5%) and replay the same
    # traffic — the live monitor's estimate must agree with the canary
    # RetrievalProbe run offline over the same queries.  Both consult the
    # exhaustive oracle, so any gap is a wiring bug.
    shadow = ShadowRecallMonitor(rate=1.0, k=10)
    cluster.attach_shadow_recall(shadow)
    replay(cluster, events)
    assert shadow.samples == NUM_QUERIES
    probe = RetrievalProbe(
        world,
        CASCADE,
        queries=[(e.user, e.query_category) for e in events],
        k=10,
        min_recall=0.0,
    )
    _, probe_recall = probe.check(model)
    shadow_gap = abs(shadow.recall_at_k - probe_recall)
    assert shadow_gap <= 0.02, (
        f"shadow recall {shadow.recall_at_k:.3f} vs probe {probe_recall:.3f} "
        f"(gap {shadow_gap:.3f} > 0.02)"
    )

    # -- FLOP cost model ---------------------------------------------------
    mean_category = int(np.mean([np.sum(world.item_category == c) for c in range(NUM_CATEGORIES)]))
    cost = compare_retrieval_strategies(
        ModelConfig.unit(),
        train.meta,
        seq_len=world.config.max_seq_len,
        category_size=mean_category,
        cascade=CASCADE,
        vector_dim=engine.cascade.dim,
    )

    report = {
        "smoke": SMOKE,
        "catalog": {
            "num_items": world.num_items,
            "num_categories": NUM_CATEGORIES,
            "mean_category_size": mean_category,
        },
        "queries": NUM_QUERIES,
        "cascade": {
            "config": {
                "retrieve_n": CASCADE.retrieve_n,
                "prune": CASCADE.prune,
                "nprobe": CASCADE.nprobe,
            },
            "qps": cascade_qps,
            "qps_speedup": speedup,
            "recall_at_10": recall,
            "recall_min": float(np.min(recalls)),
            "index_build_seconds": build_seconds,
            "index": engine.cascade.stats(),
        },
        "exhaustive": {"qps": exhaustive_qps},
        "fleet": {"num_shards": 2, "qps": fleet_qps, "recall_at_10": fleet_recall},
        "shadow_recall": {
            "rate": 1.0,
            "samples": shadow.samples,
            "recall_at_10": shadow.recall_at_k,
            "probe_recall_at_10": probe_recall,
            "gap": shadow_gap,
        },
        "sweep": sweep_report,
        "cost_model": cost.as_dict(),
    }
    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2))

    # Recall is deterministic given the seed, so it hard-gates everywhere.
    # The speedup is an in-run wall-clock ratio: the acceptance block below
    # already hard-asserts it on quiet machines and treats off-box dips as
    # warn-only, so the artifact gate must not re-promote those dips to a
    # red build (fail_tolerance=1.0 keeps it a warning).
    regressions = compare_to_artifact(
        report, REFERENCE, [("cascade", "recall_at_10")]
    ) + compare_to_artifact(
        report, REFERENCE, [("cascade", "qps_speedup")], fail_tolerance=1.0
    )

    print_table(
        ["Path", "nprobe", "N", "K", "recall@10", "QPS"],
        [["exhaustive (oracle)", "-", "-", "-", "1.000", f"{exhaustive_qps:.0f}"]]
        + sweep_rows
        + [["fleet (2 shards + batcher)", str(CASCADE.nprobe), str(CASCADE.retrieve_n),
            str(CASCADE.prune), f"{fleet_recall:.3f}", f"{fleet_qps:.0f}"]],
        title=(
            f"Retrieval cascade — {world.num_items} items, {NUM_QUERIES} Zipf queries "
            f"(artifact: {ARTIFACT.name})"
        ),
    )
    print(
        f"Speedup: {speedup:.1f}x  recall@10: {recall:.3f}  "
        f"index rebuild: {build_seconds:.1f}s  "
        f"cost-model saving: {cost.total_saving_factor:.1f}x"
    )
    if regressions:
        print("regression warnings:", *regressions, sep="\n  ")

    # Acceptance: recall is machine-portable and always gated; the wall-clock
    # ratio is hard-gated on quiet machines and direction-checked elsewhere
    # (the artifact gate above still catches regressions on CI).
    assert recall >= RECALL_FLOOR, f"recall@10 {recall:.3f} < {RECALL_FLOOR}"
    assert fleet_recall >= RECALL_FLOOR - 0.02
    if STRICT_TIMING:
        assert speedup >= 5.0, f"cascade speedup {speedup:.2f}x < 5x"
        assert fleet_qps > adjacent_exhaustive_qps
    else:
        assert speedup > 2.0
        if speedup < 5.0:
            warnings.warn(
                f"cascade speedup {speedup:.2f}x < 5x off-box "
                "(timing noise or a real regression — see the artifact)",
                stacklevel=2,
            )
