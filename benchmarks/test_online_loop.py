"""Online-loop benchmark: the serve → learn → deploy cycle under drift.

Runs the full closed loop of :mod:`repro.online` over PR 1's sharded
serving fleet on *drifting* synthetic traffic:

1. an AW-MoE is trained offline on a deliberately small warm-up log (an
   undertrained seed, as a freshly launched ranker would be);
2. each refresh cycle replays Zipf traffic through the cluster, simulates
   position-biased clicks on the served rankings, appends them to the click
   log, warm-start-trains a candidate on the new window, registers it,
   canaries it against production on held-out sessions, and hot-swaps it in
   on a pass;
3. between cycles the world drifts (user interests and category effect
   weights shift), so standing still loses accuracy — the loop has to keep
   up.

Asserted: every cycle registers a new version; at least one candidate is
promoted and hot-swapped; a deliberately corrupted candidate is blocked by
the canary gate; and the final production model beats the frozen offline
seed on post-drift evaluation traffic (NDCG and AUC) — the whole point of
closing the loop.

Writes ``benchmarks/artifacts/online_loop.json``.  Set ``REPRO_SMOKE=1``
for the CI smoke configuration (fewer sessions/cycles, same assertions).
"""

import json
import os
from dataclasses import replace
from pathlib import Path


from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig, drift_world, make_search_datasets
from repro.data.synthetic import build_test_dataset, simulate_search_log
from repro.online import (
    CanaryGate,
    IncrementalTrainer,
    ModelRegistry,
    OnlineLoop,
    PositionBiasedClickModel,
)
from repro.serving import (
    ManualClock,
    ShardedCluster,
    ZipfLoadGenerator,
    compare_gate_strategies,
)
from repro.utils import SeedBank, print_table

SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"

SEED = 23
NUM_CYCLES = 3 if SMOKE else 4
QUERIES_PER_CYCLE = 150 if SMOKE else 500
WARMUP_SESSIONS = 250 if SMOKE else 600
EVAL_SESSIONS = 150 if SMOKE else 300
NUM_SHARDS = 2
ARTIFACT = Path(__file__).parent / "artifacts" / "online_loop.json"


def _evaluate(model, dataset):
    from repro.eval import evaluate_ranking

    metrics = evaluate_ranking(model, dataset)
    return {"auc": metrics["auc"], "ndcg": metrics["ndcg"]}


def test_online_loop(tmp_path_factory):
    bank = SeedBank(SEED)
    config = WorldConfig.unit() if SMOKE else WorldConfig.small()
    world, warmup_train, _ = make_search_datasets(
        config, WARMUP_SESSIONS, max(EVAL_SESSIONS // 2, 50), seed=SEED
    )
    model_config = ModelConfig.unit() if SMOKE else ModelConfig.small()
    train_config = TrainConfig(epochs=1, batch_size=128, learning_rate=1.5e-3)
    # Refresh cycles take two passes over each (small) click window; the
    # category-level drift signal lives in few parameters, so the extra
    # pass pays off without overfitting the static structure.
    refresh_config = replace(train_config, epochs=2)

    def factory(seed=1):
        return build_model("aw_moe", model_config, warmup_train.meta, bank.child(f"model-{seed}"))

    # Offline seed: deliberately light training — the loop must improve it.
    seed_model = factory(0)
    train_model(seed_model, warmup_train, train_config, seed=77)
    frozen_offline = factory("frozen")
    frozen_offline.load_state_dict(seed_model.state_dict())

    clock = ManualClock()
    cluster = ShardedCluster(
        world,
        seed_model,
        num_shards=NUM_SHARDS,
        seed=SEED,
        max_batch_size=8,
        flush_deadline_ms=10.0,
        cache_capacity=1024,
        clock=clock,
    )
    cluster.control.record_cost_model(
        compare_gate_strategies(
            model_config, world.meta(), world.config.items_per_session, world.config.max_seq_len
        )
    )
    registry = ModelRegistry(
        str(tmp_path_factory.mktemp("registry")), clock=lambda: clock.now()
    )
    loop = OnlineLoop(
        world=world,
        cluster=cluster,
        trainer=IncrementalTrainer(seed_model, refresh_config, seed=SEED),
        model_factory=factory,
        registry=registry,
        canary=CanaryGate(tolerance=0.02),
        click_model=PositionBiasedClickModel(world, bank.child("clicks")),
        clock=clock,
        seed=SEED,
    )
    loop.bootstrap()

    # -- refresh cycles on drifting traffic -----------------------------
    drift_rng = bank.child("drift")
    cycle_rows = []
    for cycle in range(NUM_CYCLES):
        if cycle > 0:
            drift_world(world, drift_rng, interest_drift=0.1, trend_drift=0.3)
        events = ZipfLoadGenerator(
            bank.child(f"traffic-{cycle}"), world=world, zipf_exponent=1.1, target_qps=300.0
        ).generate(QUERIES_PER_CYCLE)
        report = loop.run_cycle(events)
        cycle_rows.append(report)
        assert report.sessions_logged == QUERIES_PER_CYCLE
        assert report.candidate_version is not None, "every cycle must produce a candidate"

    # -- canary sanity check: corrupted candidates are blocked ----------
    corrupted = factory("corrupted")
    corrupted.load_state_dict(loop.trainer.model.state_dict())
    noise_rng = bank.child("corruption")
    for param in corrupted.parameters():
        param.data += noise_rng.normal(0, 1.0, size=param.data.shape).astype(param.data.dtype)
    holdout = build_test_dataset(
        simulate_search_log(world, EVAL_SESSIONS, bank.child("canary-holdout"))
    )
    corrupted_entry = registry.register(corrupted, parent=loop.production_version)
    corrupted_report = loop.canary.judge(corrupted, loop.production_model, holdout)
    assert not corrupted_report.passed, "canary must block a corrupted candidate"
    registry.reject(corrupted_entry.version, metrics=corrupted_report.candidate)
    cluster.control.record_canary(False)

    # -- final evaluation on post-drift traffic -------------------------
    final_eval = build_test_dataset(
        simulate_search_log(world, EVAL_SESSIONS, bank.child("final-eval"))
    )
    offline_metrics = _evaluate(frozen_offline, final_eval)
    online_metrics = _evaluate(loop.production_model, final_eval)

    fleet = cluster.summary()
    report = {
        "smoke": SMOKE,
        "cycles": [row.summary() for row in cycle_rows],
        "registry": [
            {
                "version": entry.version,
                "status": entry.status,
                "parent": entry.parent,
                "window": list(entry.window),
                "metrics": entry.metrics,
            }
            for entry in registry.versions
        ],
        "final_eval": {
            "sessions": int(final_eval.num_sessions()),
            "frozen_offline": offline_metrics,
            "online_loop": online_metrics,
            "ndcg_lift": online_metrics["ndcg"] - offline_metrics["ndcg"],
            "auc_lift": online_metrics["auc"] - offline_metrics["auc"],
        },
        "fleet": {
            "queries": fleet["queries"],
            "online": fleet["online"],
            "cost": fleet["cost"],
            "cache_hit_rate": fleet["cache"]["hit_rate"],
        },
    }
    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2))

    print_table(
        ["Cycle", "Clicks", "Candidate", "Promoted", "Canary AUC", "Canary NDCG"],
        [
            [
                str(row.cycle),
                str(row.clicks),
                f"v{row.candidate_version:04d}",
                "yes" if row.promoted else "no",
                "-" if row.canary is None else f"{row.canary.candidate['auc']:.4f}",
                "-" if row.canary is None else f"{row.canary.candidate['ndcg']:.4f}",
            ]
            for row in cycle_rows
        ],
        title=f"Online loop — {NUM_CYCLES} refresh cycles on drifting traffic "
        f"(artifact: {ARTIFACT.name})",
    )
    print(
        f"Post-drift eval: offline AUC={offline_metrics['auc']:.4f} "
        f"NDCG={offline_metrics['ndcg']:.4f}  |  online AUC={online_metrics['auc']:.4f} "
        f"NDCG={online_metrics['ndcg']:.4f}"
    )

    # -- acceptance ------------------------------------------------------
    promotions = sum(1 for row in cycle_rows if row.promoted)
    assert promotions >= 1, "at least one refresh must be promoted and hot-swapped"
    assert fleet["online"]["swaps"] == promotions + 1  # + the bootstrap swap
    assert fleet["online"]["canary_failures"] >= 1  # the corrupted candidate
    assert registry.num_rejected >= 1
    assert registry.latest_version == NUM_CYCLES + 2  # seed + cycles + corrupted
    # The loop must adapt to drift better than the frozen offline model.
    assert online_metrics["ndcg"] > offline_metrics["ndcg"]
    assert online_metrics["auc"] > offline_metrics["auc"]
