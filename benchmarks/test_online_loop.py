"""Online-loop benchmark: the serve → learn → deploy cycle under drift.

Runs the full closed loop of :mod:`repro.online` over PR 1's sharded
serving fleet on *drifting* synthetic traffic:

1. an AW-MoE is trained offline on a deliberately small warm-up log (an
   undertrained seed, as a freshly launched ranker would be);
2. each refresh cycle replays Zipf traffic through the cluster, simulates
   position-biased clicks on the served rankings, appends them to the click
   log, warm-start-trains a candidate on the new window, registers it,
   canaries it against production on held-out sessions, and hot-swaps it in
   on a pass;
3. between cycles the world drifts (user interests and category effect
   weights shift), so standing still loses accuracy — the loop has to keep
   up.

Asserted: every cycle registers a new version; at least one candidate is
promoted and hot-swapped; a deliberately corrupted candidate is blocked by
the canary gate; and the final production model beats the frozen offline
seed on post-drift evaluation traffic (NDCG and AUC) — the whole point of
closing the loop.

The loop runs fully observed: a 100%-sampling tracer exports one
refresh-cycle span tree per cycle to ``refresh_trace.jsonl``, the trainer
streams per-step loss/grad-norm/timing into a metrics registry, a drift
monitor scores each cycle's live window against the promoted model's
training reference, an alert manager watches the merged telemetry, and the
run closes by rendering the self-contained ``dashboard.html`` — the two
files CI uploads as artifacts.

Writes ``benchmarks/artifacts/online_loop.json``.  Set ``REPRO_SMOKE=1``
for the CI smoke configuration (fewer sessions/cycles, same assertions).
"""

import json
import os
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig, drift_world, make_search_datasets
from repro.data.synthetic import build_test_dataset, simulate_search_log
from repro.obs import (
    AlertManager,
    DriftMonitor,
    JsonlTraceExporter,
    MetricsRegistry,
    SloTracker,
    Tracer,
)
from repro.online import (
    CanaryGate,
    IncrementalTrainer,
    ModelRegistry,
    OnlineLoop,
    PositionBiasedClickModel,
)
from repro.serving import (
    ManualClock,
    ShardedCluster,
    ZipfLoadGenerator,
    compare_gate_strategies,
)
from repro.utils import SeedBank, print_table

SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"

SEED = 23
NUM_CYCLES = 3 if SMOKE else 4
QUERIES_PER_CYCLE = 150 if SMOKE else 500
WARMUP_SESSIONS = 250 if SMOKE else 600
EVAL_SESSIONS = 150 if SMOKE else 300
NUM_SHARDS = 2
_ARTIFACTS = Path(__file__).parent / "artifacts"
ARTIFACT = _ARTIFACTS / "online_loop.json"
#: CI-uploaded observability artifacts (same names in smoke and full mode —
#: the online-loop benchmark runs once per job).
REFRESH_TRACE = _ARTIFACTS / "refresh_trace.jsonl"
DASHBOARD = _ARTIFACTS / "dashboard.html"
#: Demonstrative alert rules over the loop's merged telemetry.  Whether
#: they fire depends on how hard the worlds drifts; transitions are
#: recorded in the artifact, not asserted (the deterministic alert-path
#: assertion lives in ``tests/online/test_observability.py``).
ALERT_RULES = (
    "drift-worst: drift_psi_worst > 0.25 for 1",
    "log-lag: click_log_lag > 10000 for 1 severity critical",
)


def _evaluate(model, dataset):
    from repro.eval import evaluate_ranking

    metrics = evaluate_ranking(model, dataset)
    return {"auc": metrics["auc"], "ndcg": metrics["ndcg"]}


def test_online_loop(tmp_path_factory):
    bank = SeedBank(SEED)
    config = WorldConfig.unit() if SMOKE else WorldConfig.small()
    world, warmup_train, _ = make_search_datasets(
        config, WARMUP_SESSIONS, max(EVAL_SESSIONS // 2, 50), seed=SEED
    )
    model_config = ModelConfig.unit() if SMOKE else ModelConfig.small()
    train_config = TrainConfig(epochs=1, batch_size=128, learning_rate=1.5e-3)
    # Refresh cycles take two passes over each (small) click window; the
    # category-level drift signal lives in few parameters, so the extra
    # pass pays off without overfitting the static structure.
    refresh_config = replace(train_config, epochs=2)

    def factory(seed=1):
        return build_model("aw_moe", model_config, warmup_train.meta, bank.child(f"model-{seed}"))

    # Offline seed: deliberately light training — the loop must improve it.
    seed_model = factory(0)
    train_model(seed_model, warmup_train, train_config, seed=77)
    frozen_offline = factory("frozen")
    frozen_offline.load_state_dict(seed_model.state_dict())

    clock = ManualClock()
    train_metrics = MetricsRegistry()
    drift = DriftMonitor(min_samples=10)
    alerts = AlertManager(ALERT_RULES)
    cluster = ShardedCluster(
        world,
        seed_model,
        num_shards=NUM_SHARDS,
        seed=SEED,
        max_batch_size=8,
        flush_deadline_ms=10.0,
        cache_capacity=1024,
        clock=clock,
        slo=SloTracker(latency_slo_ms=250.0),
        drift=drift,
        alerts=alerts,
    )
    cluster.control.record_cost_model(
        compare_gate_strategies(
            model_config, world.meta(), world.config.items_per_session, world.config.max_seq_len
        )
    )
    registry = ModelRegistry(
        str(tmp_path_factory.mktemp("registry")), clock=lambda: clock.now()
    )
    REFRESH_TRACE.parent.mkdir(parents=True, exist_ok=True)
    trace_exporter = JsonlTraceExporter(str(REFRESH_TRACE), max_bytes=4_000_000, keep=2)
    loop = OnlineLoop(
        world=world,
        cluster=cluster,
        trainer=IncrementalTrainer(
            seed_model, refresh_config, seed=SEED, metrics=train_metrics
        ),
        model_factory=factory,
        registry=registry,
        canary=CanaryGate(tolerance=0.02),
        click_model=PositionBiasedClickModel(world, bank.child("clicks")),
        clock=clock,
        seed=SEED,
        tracer=Tracer(sample_rate=1.0, exporter=trace_exporter, clock=clock.now),
        drift=drift,
        alerts=alerts,
    )
    loop.bootstrap()

    # -- refresh cycles on drifting traffic -----------------------------
    drift_rng = bank.child("drift")
    cycle_rows = []
    for cycle in range(NUM_CYCLES):
        if cycle > 0:
            drift_world(world, drift_rng, interest_drift=0.1, trend_drift=0.3)
        events = ZipfLoadGenerator(
            bank.child(f"traffic-{cycle}"), world=world, zipf_exponent=1.1, target_qps=300.0
        ).generate(QUERIES_PER_CYCLE)
        report = loop.run_cycle(events)
        cycle_rows.append(report)
        assert report.sessions_logged == QUERIES_PER_CYCLE
        assert report.candidate_version is not None, "every cycle must produce a candidate"

    # -- canary sanity check: corrupted candidates are blocked ----------
    corrupted = factory("corrupted")
    corrupted.load_state_dict(loop.trainer.model.state_dict())
    noise_rng = bank.child("corruption")
    for param in corrupted.parameters():
        param.data += noise_rng.normal(0, 1.0, size=param.data.shape).astype(param.data.dtype)
    holdout = build_test_dataset(
        simulate_search_log(world, EVAL_SESSIONS, bank.child("canary-holdout"))
    )
    corrupted_entry = registry.register(corrupted, parent=loop.production_version)
    corrupted_report = loop.canary.judge(corrupted, loop.production_model, holdout)
    assert not corrupted_report.passed, "canary must block a corrupted candidate"
    registry.reject(corrupted_entry.version, metrics=corrupted_report.candidate)
    cluster.control.record_canary(False)

    # -- final evaluation on post-drift traffic -------------------------
    final_eval = build_test_dataset(
        simulate_search_log(world, EVAL_SESSIONS, bank.child("final-eval"))
    )
    offline_metrics = _evaluate(frozen_offline, final_eval)
    online_metrics = _evaluate(loop.production_model, final_eval)

    # -- observability artifacts: refresh traces + dashboard -------------
    trace_exporter.close()
    dashboard_path = cluster.dashboard(
        str(DASHBOARD), registry=train_metrics, traces=list(loop.tracer.finished)
    )

    fleet = cluster.summary()
    report = {
        "smoke": SMOKE,
        "cycles": [row.summary() for row in cycle_rows],
        "alerts": alerts.status(),
        "drift": drift.to_dict(),
        "train_metrics": train_metrics.to_json(),
        "registry": [
            {
                "version": entry.version,
                "status": entry.status,
                "parent": entry.parent,
                "window": list(entry.window),
                "metrics": entry.metrics,
            }
            for entry in registry.versions
        ],
        "final_eval": {
            "sessions": int(final_eval.num_sessions()),
            "frozen_offline": offline_metrics,
            "online_loop": online_metrics,
            "ndcg_lift": online_metrics["ndcg"] - offline_metrics["ndcg"],
            "auc_lift": online_metrics["auc"] - offline_metrics["auc"],
        },
        "fleet": {
            "queries": fleet["queries"],
            "online": fleet["online"],
            "cost": fleet["cost"],
            "cache_hit_rate": fleet["cache"]["hit_rate"],
        },
    }
    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2))

    print_table(
        ["Cycle", "Clicks", "Candidate", "Promoted", "Canary AUC", "Canary NDCG"],
        [
            [
                str(row.cycle),
                str(row.clicks),
                f"v{row.candidate_version:04d}",
                "yes" if row.promoted else "no",
                "-" if row.canary is None else f"{row.canary.candidate['auc']:.4f}",
                "-" if row.canary is None else f"{row.canary.candidate['ndcg']:.4f}",
            ]
            for row in cycle_rows
        ],
        title=f"Online loop — {NUM_CYCLES} refresh cycles on drifting traffic "
        f"(artifact: {ARTIFACT.name})",
    )
    print(
        f"Post-drift eval: offline AUC={offline_metrics['auc']:.4f} "
        f"NDCG={offline_metrics['ndcg']:.4f}  |  online AUC={online_metrics['auc']:.4f} "
        f"NDCG={online_metrics['ndcg']:.4f}"
    )

    # Note: fleet_report(dashboard_path=...) would re-render the dashboard
    # without the refresh traces, so the dashboard is written above instead.
    print(cluster.fleet_report())
    print(f"dashboard: {dashboard_path}")

    # -- acceptance ------------------------------------------------------
    promotions = sum(1 for row in cycle_rows if row.promoted)
    assert promotions >= 1, "at least one refresh must be promoted and hot-swapped"
    assert fleet["online"]["swaps"] == promotions + 1  # + the bootstrap swap
    assert fleet["online"]["canary_failures"] >= 1  # the corrupted candidate
    assert registry.num_rejected >= 1
    assert registry.latest_version == NUM_CYCLES + 2  # seed + cycles + corrupted
    # The loop must adapt to drift better than the frozen offline model.
    assert online_metrics["ndcg"] > offline_metrics["ndcg"]
    assert online_metrics["auc"] > offline_metrics["auc"]

    # -- observability acceptance ----------------------------------------
    # One refresh-cycle span tree per cycle, covering every loop stage.
    trace_records = [
        json.loads(line) for line in REFRESH_TRACE.read_text().strip().splitlines()
    ]
    refreshes = [r for r in trace_records if r["name"] == "refresh"]
    assert len(refreshes) == NUM_CYCLES
    span_names = {span["name"] for record in refreshes for span in record["spans"]}
    for required in ("serve", "read_new", "train", "epoch", "register", "canary",
                     "replay", "swap"):
        assert required in span_names, f"span {required!r} missing from refresh trace"
    # Per-step training telemetry streamed into the registry.
    steps = train_metrics.counter("train_steps_total").value
    assert steps > 0
    assert train_metrics.histogram("train_step_ms").count == steps
    assert train_metrics.histogram("train_loss").count == steps
    assert train_metrics.histogram("train_grad_norm").count == steps
    # Drift scored against the promoted model's reference after cycle 1.
    assert drift.has_reference
    assert any(row.drift is not None for row in cycle_rows[1:])
    # The dashboard artifact rendered with its panels.
    html = DASHBOARD.read_text()
    assert html.startswith("<!DOCTYPE html>")
    for anchor in ("Alerts", "Drift", "Control-plane events", "Sampled traces",
                   "train_step_ms"):
        assert anchor in html, f"dashboard panel anchor {anchor!r} missing"


def test_drift_smoke(tmp_path_factory):
    """Drift-monitor end-to-end sanity: drifted traffic scores higher PSI.

    Two runs of the same two-cycle loop under identical seeds — one
    stationary, one with a hard ``drift_world`` between the cycles — must
    disagree in exactly one way: the drifted run's cycle-2 CTR PSI clearly
    exceeds the stationary baseline.  The refresh uses a near-zero learning
    rate so the promoted model is weight-identical to its predecessor:
    reference and live windows are served by the same scoring function and
    any PSI movement is traffic drift, not a deployment artifact.
    """

    def run(drifted):
        world, warmup, _ = make_search_datasets(WorldConfig.unit(), 400, 100, seed=2)
        model = build_model(
            "aw_moe", ModelConfig.unit(), warmup.meta, np.random.default_rng(0)
        )
        train_model(
            model, warmup,
            TrainConfig(epochs=1, batch_size=64, learning_rate=3e-3), seed=8,
        )
        state = model.state_dict()

        def make_model(trained=False):
            fresh = build_model(
                "aw_moe", ModelConfig.unit(), warmup.meta, np.random.default_rng(1)
            )
            if trained:
                fresh.load_state_dict(state)
            return fresh

        clock = ManualClock()
        drift_monitor = DriftMonitor(min_samples=10)
        cluster = ShardedCluster(
            world, make_model(trained=True), num_shards=2, seed=0,
            max_batch_size=4, flush_deadline_ms=5.0, cache_capacity=128,
            clock=clock, drift=drift_monitor,
        )
        loop = OnlineLoop(
            world=world,
            cluster=cluster,
            trainer=IncrementalTrainer(
                make_model(trained=True),
                TrainConfig(epochs=1, batch_size=64, learning_rate=1e-7),
                seed=5,
            ),
            model_factory=make_model,
            registry=ModelRegistry(
                str(tmp_path_factory.mktemp("drift-registry")), clock=lambda: 0.0
            ),
            canary=CanaryGate(tolerance=1.0),
            click_model=PositionBiasedClickModel(world, np.random.default_rng(3)),
            clock=clock,
            seed=11,
            drift=drift_monitor,
        )
        loop.bootstrap()
        gen = ZipfLoadGenerator(
            np.random.default_rng(7), world=world, target_qps=500.0
        )
        loop.run_cycle(gen.generate(250))  # promote + freeze the reference
        if drifted:
            drift_world(
                world, np.random.default_rng(9), interest_drift=1.0, trend_drift=0.8
            )
        report = loop.run_cycle(gen.generate(250))
        return report.drift["ctr"]["psi"]

    stationary = run(drifted=False)
    drifted = run(drifted=True)
    print(f"drift smoke: stationary ctr PSI={stationary:.4f}, "
          f"drifted ctr PSI={drifted:.4f}")
    # Measured on these seeds: ~0.009 stationary vs ~0.09 drifted; the
    # asserted gap (2x, plus an absolute floor) leaves room for platform
    # float jitter without ever passing on a dead monitor.
    assert stationary < 0.04, "stationary traffic must stay near the noise floor"
    assert drifted > 0.04, "drift_world traffic must raise PSI above the alarm line"
    assert drifted > 2.0 * stationary
