"""Shared helpers for the benchmarks: table building and artifact guards."""

import json
import os
import warnings
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.dataset import RankingDataset
from repro.eval import paired_bootstrap_pvalue
from repro.eval.auc import session_auc, session_auc_at_k
from repro.eval.evaluator import predict_scores
from repro.eval.ndcg import session_ndcg
from repro.utils import format_float, print_table


class BenchmarkRegressionWarning(UserWarning):
    """A benchmark metric regressed versus the checked-in reference artifact."""


class BenchmarkRegressionError(AssertionError):
    """A benchmark metric regressed past the hard gate — the build is red.

    Raised by :func:`compare_to_artifact` when a metric falls more than
    ``fail_tolerance`` below the checked-in reference.  Set
    ``REPRO_ALLOW_REGRESSION=1`` to demote the failure to a warning (e.g. a
    PR that knowingly trades throughput for a feature — land it, then
    refresh ``benchmarks/reference/`` in the same PR).
    """


def _dig(report: Dict, key_path: Sequence[str]):
    value = report
    for key in key_path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def compare_to_artifact(
    report: Dict,
    reference_path: Path,
    key_paths: Sequence[Sequence[str]],
    tolerance: float = 0.2,
    fail_tolerance: float = 0.3,
) -> List[str]:
    """Benchmark-regression gate against the checked-in reference artifact.

    Compares higher-is-better metrics (QPS, steps/sec, speedup ratios) at
    each ``key_path`` in ``report`` against the reference artifact at
    ``reference_path``:

    * a drop beyond ``tolerance`` emits a :class:`BenchmarkRegressionWarning`
      — a signal to investigate;
    * a drop beyond ``fail_tolerance`` raises
      :class:`BenchmarkRegressionError` — a red build.  The gated key paths
      should therefore be machine-portable *ratios* (speedup vs an eager
      baseline measured in the same run), not raw wall-clock numbers.

    ``REPRO_ALLOW_REGRESSION=1`` is the escape hatch: hard failures demote
    to warnings so a deliberate regression can land together with a
    refreshed reference artifact.  Returns the list of emitted messages
    (empty when clean or when no reference exists yet).
    """
    if not reference_path.exists():
        return []
    allow = os.environ.get("REPRO_ALLOW_REGRESSION", "") == "1"
    reference = json.loads(reference_path.read_text())
    messages: List[str] = []
    failures: List[str] = []
    for key_path in key_paths:
        current = _dig(report, key_path)
        baseline = _dig(reference, key_path)
        if not isinstance(current, (int, float)) or not isinstance(baseline, (int, float)):
            continue  # a partial key path is a stale reference, not a crash
        if baseline <= 0:
            continue
        # The two thresholds act independently, so a fail_tolerance tighter
        # than the warn tolerance still gates.
        drop = 1.0 - current / baseline
        if drop <= min(tolerance, fail_tolerance):
            continue
        message = (
            f"{'.'.join(key_path)} regressed {drop:.0%} "
            f"vs reference ({current:.2f} < {baseline:.2f} - {tolerance:.0%})"
        )
        messages.append(message)
        if drop > fail_tolerance and not allow:
            failures.append(message)
        else:
            warnings.warn(message, BenchmarkRegressionWarning, stacklevel=2)
    if failures:
        raise BenchmarkRegressionError(
            "benchmark regression beyond the hard gate "
            f"(>{fail_tolerance:.0%}; REPRO_ALLOW_REGRESSION=1 to override):\n  "
            + "\n  ".join(failures)
        )
    return messages


def compare_profile_shares(
    report: Dict,
    reference_path: Path,
    warn_delta: float = 0.10,
    fail_delta: float = 0.25,
) -> List[str]:
    """Regression gate on per-kernel time *shares* from the plan profiler.

    Shares (each step's fraction of its plan's wall time) are the most
    machine-portable profile quantity: absolute kernel times move with the
    CPU, but one kernel suddenly eating a much larger slice of the plan is a
    code regression.  Compares ``report["profile"]["shares"]`` — a
    ``{plan: {step: share}}`` mapping — against the reference artifact:

    * a step's share growing more than ``warn_delta`` share points warns;
    * more than ``fail_delta`` raises :class:`BenchmarkRegressionError`
      (``REPRO_ALLOW_REGRESSION=1`` demotes to a warning, as in
      :func:`compare_to_artifact`).

    Returns the emitted messages; quietly returns ``[]`` when either side
    lacks a profile section (e.g. a reference checked in before profiling
    existed), so the gate is safe to call unconditionally.
    """
    current_shares = _dig(report, ("profile", "shares"))
    if not reference_path.exists() or not isinstance(current_shares, dict):
        return []
    reference = json.loads(reference_path.read_text())
    baseline_shares = _dig(reference, ("profile", "shares"))
    if not isinstance(baseline_shares, dict):
        return []
    allow = os.environ.get("REPRO_ALLOW_REGRESSION", "") == "1"
    messages: List[str] = []
    failures: List[str] = []
    for plan, baseline_steps in baseline_shares.items():
        current_steps = current_shares.get(plan)
        if not isinstance(current_steps, dict) or not isinstance(baseline_steps, dict):
            continue
        for step, baseline in baseline_steps.items():
            current = current_steps.get(step)
            if not isinstance(current, (int, float)) or not isinstance(baseline, (int, float)):
                continue
            delta = current - baseline
            if delta <= min(warn_delta, fail_delta):
                continue
            message = (
                f"{plan}.{step} time share grew {delta * 100:.0f} points "
                f"vs reference ({current:.1%} > {baseline:.1%} + {warn_delta:.0%})"
            )
            messages.append(message)
            if delta > fail_delta and not allow:
                failures.append(message)
            else:
                warnings.warn(message, BenchmarkRegressionWarning, stacklevel=2)
    if failures:
        raise BenchmarkRegressionError(
            "per-kernel profile regression beyond the hard gate "
            f"(>{fail_delta * 100:.0f} share points; REPRO_ALLOW_REGRESSION=1 "
            "to override):\n  " + "\n  ".join(failures)
        )
    return messages


MODEL_LABELS = {
    "dnn": "DNN",
    "din": "DIN",
    "category_moe": "Category-MoE",
    "aw_moe": "AW-MoE",
    "aw_moe_cl": "AW-MoE & CL",
}


def evaluate_on_split(
    trained: Dict[str, Tuple[object, np.ndarray]],
    split: RankingDataset,
    full_test_len: int,
) -> Dict[str, Dict[str, float]]:
    """All four session metrics for every model on one test split.

    ``trained`` maps model name to (model, scores-on-full-test); when the
    split is a subset, scores are recomputed on the subset's rows.
    """
    results: Dict[str, Dict[str, float]] = {}
    for name, (model, full_scores) in trained.items():
        if len(split) == full_test_len:
            scores = full_scores
        else:
            scores = predict_scores(model, split)
        labels, sessions = split.label, split.session_id
        results[name] = {
            "auc": session_auc(scores, labels, sessions),
            "auc@10": session_auc_at_k(scores, labels, sessions, k=10),
            "ndcg": session_ndcg(scores, labels, sessions),
            "ndcg@10": session_ndcg(scores, labels, sessions, k=10),
            "_scores": scores,
        }
    return results


def print_model_table(
    title: str,
    results: Dict[str, Dict[str, float]],
    split: RankingDataset,
    paper_auc: Dict[str, float],
    reference: str = "category_moe",
) -> Dict[str, float]:
    """Print the measured table next to the paper's AUC column.

    Returns the p-values of AW-MoE rows against ``reference`` (the paper
    marks these with a double dagger).
    """
    rows: List[List[str]] = []
    p_values: Dict[str, float] = {}
    ref_scores = results[reference]["_scores"]
    rng = np.random.default_rng(0)
    for name in results:
        metrics = results[name]
        p_text = "-"
        if name in ("aw_moe", "aw_moe_cl"):
            p = paired_bootstrap_pvalue(
                ref_scores,
                metrics["_scores"],
                split.label,
                split.session_id,
                metric="auc",
                num_resamples=500,
                rng=rng,
            )
            p_values[name] = p
            p_text = f"{p:.3f}"
        rows.append(
            [
                MODEL_LABELS[name],
                format_float(metrics["auc"]),
                format_float(metrics["auc@10"]),
                format_float(metrics["ndcg"]),
                format_float(metrics["ndcg@10"]),
                format_float(paper_auc.get(name)),
                p_text,
            ]
        )
    print_table(
        ["Model", "AUC", "AUC@10", "NDCG", "NDCG@10", "paper AUC", "p vs Cat-MoE"],
        rows,
        title=title,
    )
    return p_values
