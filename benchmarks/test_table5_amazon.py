"""Table V — the recommendation experiment (Amazon-review protocol).

Paper values (overall AUC): DNN 0.7123 < DIN 0.7162 < Category-MoE 0.7253 <
AW-MoE 0.7362 < AW-MoE & CL 0.7381.  Our stand-in dataset follows the exact
leave-one-out / 1-negative / 90-10-user-split protocol; there is no query,
so the gate consumes the target item (the ``task="reco"`` code path).
"""

from dataclasses import replace

import pytest

from repro.core import ModelConfig, build_model, train_model
from repro.data import WorldConfig
from repro.data.amazon import make_amazon_datasets
from repro.eval import predict_scores
from repro.eval.auc import global_auc
from repro.utils import SeedBank, format_float, print_table

from conftest import bench_train_config
from _helpers import MODEL_LABELS

PAPER_AUC = {
    "dnn": 0.7123,
    "din": 0.7162,
    "category_moe": 0.7253,
    "aw_moe": 0.7362,
    "aw_moe_cl": 0.7381,
}


@pytest.fixture(scope="module")
def amazon_data():
    config = replace(WorldConfig.small(), num_users=9000)
    return make_amazon_datasets(config, seed=7)


def test_table5_amazon_recommendation(benchmark, amazon_data):
    _, train, test = amazon_data
    model_config = ModelConfig.small(task="reco")
    bank = SeedBank(55)

    def run_all():
        aucs = {}
        for name in PAPER_AUC:
            build_name = "aw_moe" if name == "aw_moe_cl" else name
            train_config = bench_train_config()
            if name == "aw_moe_cl":
                train_config = train_config.with_contrastive()
            model = build_model(build_name, model_config, train.meta, bank.child(name))
            train_model(model, train, train_config, seed=9)
            aucs[name] = global_auc(predict_scores(model, test), test.label)
        return aucs

    aucs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [MODEL_LABELS[name], format_float(aucs[name]), format_float(PAPER_AUC[name])]
        for name in PAPER_AUC
    ]
    print_table(
        ["Model", "AUC", "paper AUC"],
        rows,
        title="Table V — recommendation protocol (synthetic Amazon-like world)",
    )

    # Robust shape of the paper's Table V: an AW-MoE variant on top, DNN not
    # competitive with it (middle-row ordering is below the noise floor at
    # this scale and is reported, not asserted).
    assert max(aucs["aw_moe"], aucs["aw_moe_cl"]) == max(aucs.values()), (
        "an AW-MoE variant must be the strongest model"
    )
    assert aucs["aw_moe_cl"] > aucs["dnn"], "the full method must beat DNN"
    for name, value in aucs.items():
        assert value > 0.6, f"{name} must learn the recommendation task"
