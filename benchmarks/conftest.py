"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper at CPU scale.
The expensive artifacts — the synthetic world and the five trained models of
Tables II–IV — are session-scoped so each is built exactly once per
``pytest benchmarks/ --benchmark-only`` run.

Protocol notes (documented in EXPERIMENTS.md):

* Training uses a fixed two-epoch budget for every model, mirroring the
  single-pass convention of production CTR models (the paper trains one pass
  over 15 days of logs); longer training overfits at this scale for *all*
  models.
* Absolute metric values differ from the paper (different data, 4-5 orders
  of magnitude smaller); the benchmarks check and report the *shape*:
  ordering of models, sign of deltas, and locations of optima.
"""

import pytest

from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig, make_search_datasets
from repro.data.splits import standard_test_splits
from repro.eval import predict_scores
from repro.utils import SeedBank

BENCH_SEED = 3
TRAIN_SESSIONS = 5000
TEST_SESSIONS = 1200

#: The five models of Tables II–IV, in the paper's row order.
MODEL_ROWS = ["dnn", "din", "category_moe", "aw_moe", "aw_moe_cl"]


def bench_train_config() -> TrainConfig:
    # The paper-table benchmarks train through the eager reference path:
    # their pass thresholds (AUC orderings, p-values, cluster purities) were
    # calibrated on its exact float trajectory, and several sit close enough
    # to the line that any reordering of float additions flips them.  The
    # fast path optimizes the same objective (parity-tested in
    # tests/core/test_fast_training.py, throughput-tested in
    # benchmarks/test_training_throughput.py) but follows a different
    # rounding trajectory, which is noise these quality benchmarks must not
    # measure.
    return TrainConfig(epochs=2, batch_size=256, learning_rate=1.5e-3, fast_path=False)


@pytest.fixture(scope="session")
def search_data():
    """The JD-like synthetic world with train (1:1) and full test splits."""
    return make_search_datasets(
        WorldConfig.small(), TRAIN_SESSIONS, TEST_SESSIONS, seed=BENCH_SEED
    )


@pytest.fixture(scope="session")
def search_splits(search_data):
    """Full + two long-tail test splits (Table I columns)."""
    _, _, test = search_data
    return standard_test_splits(test)


@pytest.fixture(scope="session")
def trained_models(search_data):
    """All five compared models trained once, with cached test scores."""
    _, train, test = search_data
    bank = SeedBank(101)
    config = ModelConfig.small()
    trained = {}
    for name in MODEL_ROWS:
        build_name = "aw_moe" if name == "aw_moe_cl" else name
        train_config = bench_train_config()
        if name == "aw_moe_cl":
            train_config = train_config.with_contrastive()
        model = build_model(build_name, config, train.meta, bank.child(name))
        train_model(model, train, train_config, seed=77)
        scores = predict_scores(model, test)
        trained[name] = (model, scores)
    return trained
