"""§IV-I — simulated online A/B test: AW-MoE vs the Category-MoE incumbent.

The paper's live experiment (2021-09-17 .. 2021-09-22) measured +0.78% UCVR
(p = 2.2e-5) and +0.35% UCTR (p = 2.97e-5) for AW-MoE over Category-MoE.  We
replay the setup against the synthetic world: users split 50/50 between the
two rankers, clicks/purchases drawn from the ground-truth preference model
with position bias.
"""

from repro.serving import run_ab_test
from repro.utils import print_table


def test_online_ab_test_aw_moe_vs_category_moe(benchmark, search_data, trained_models):
    world, _, _ = search_data
    control, _ = trained_models["category_moe"]
    treatment, _ = trained_models["aw_moe_cl"]

    result = benchmark.pedantic(
        lambda: run_ab_test(world, control, treatment, num_users=600, seed=5),
        rounds=1,
        iterations=1,
    )

    rows = [
        ["UCTR", f"{result.uctr_a:.4f}", f"{result.uctr_b:.4f}",
         f"{result.uctr_lift * 100:+.2f}%", f"{result.uctr_p_value:.4f}", "+0.35%"],
        ["UCVR", f"{result.ucvr_a:.4f}", f"{result.ucvr_b:.4f}",
         f"{result.ucvr_lift * 100:+.2f}%", f"{result.ucvr_p_value:.4f}", "+0.78%"],
    ]
    print_table(
        ["Metric", "Category-MoE", "AW-MoE & CL", "lift", "p-value", "paper lift"],
        rows,
        title="§IV-I — simulated online A/B test",
    )

    # Shape: the treatment must not lose conversions; at simulation scale the
    # paper's sub-1% lifts sit inside the binomial noise, so the assertion is
    # directional with a tolerance rather than a significance requirement.
    assert result.ucvr_b >= result.ucvr_a - 0.03, "AW-MoE must not lose UCVR"
    assert result.uctr_b >= result.uctr_a - 0.03, "AW-MoE must not lose UCTR"
    assert 0.0 < result.uctr_a < 1.0
    assert 0.0 < result.ucvr_a < 1.0
