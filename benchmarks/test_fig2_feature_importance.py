"""Fig. 2 — GBDT feature importance for category-new vs category-old users.

Paper observation: sales / popularity / price dominate for category-new
users; item_click_cnt / brand_click_time_diff / shop_click_cnt dominate for
category-old users.  The benchmark trains one GBDT per user group (our
XGBoost stand-in) and asserts the same dominance pattern.
"""

import numpy as np

from repro.eval import feature_importance_by_user_group
from repro.utils import print_table


def test_fig2_feature_importance_by_user_group(benchmark, search_data):
    _, train, _ = search_data

    result = benchmark.pedantic(
        lambda: feature_importance_by_user_group(train, rng=np.random.default_rng(0)),
        rounds=1,
        iterations=1,
    )

    print_table(
        ["Feature", "Category-new users", "Category-old users"],
        result.rows(),
        title="Fig. 2 — normalized GBDT gain importance per user group",
    )

    # The paper's qualitative pattern:
    assert result.popularity_mass("new") > result.popularity_mass("old"), (
        "popularity-side features must matter more for category-new users"
    )
    assert result.two_sided_mass("old") > result.two_sided_mass("new"), (
        "two-sided features must matter more for category-old users"
    )
    assert result.popularity_mass("new") > result.two_sided_mass("new")
    assert result.two_sided_mass("old") > result.popularity_mass("old")
