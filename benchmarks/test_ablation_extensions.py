"""§V future-work ablations: sparse top-K gate, adversarial regularizer,
alternative sequence augmentations.

These are the three extensions the paper names in its conclusion; each
ablation compares the extension against plain AW-MoE(+CL) under the standard
benchmark protocol.
"""

import numpy as np

from repro.core import AWMoE, ModelConfig, build_model, train_model
from repro.core.extensions import SparseGatedAWMoE, expert_correlation_loss, train_adversarial_aw_moe
from repro.eval import evaluate_ranking, predict_scores
from repro.eval.auc import session_auc_at_k
from repro.nn import Tensor
from repro.utils import SeedBank, format_float, print_table

from conftest import bench_train_config


def test_ablation_sparse_top_k_gate(benchmark, search_data):
    """X1 — sparsely-gated top-K AW-MoE (K=8 experts, top-2 active)."""
    from dataclasses import replace

    _, train, test = search_data
    bank = SeedBank(201)

    def run():
        results = {}
        dense_config = replace(ModelConfig.small(), num_experts=8)
        dense = AWMoE(dense_config, train.meta, bank.child("dense8"))
        train_model(dense, train, bench_train_config(), seed=31)
        results["dense K=8"] = (evaluate_ranking(dense, test), 1.0)

        sparse = SparseGatedAWMoE(dense_config, train.meta, bank.child("sparse8"), top_k=2)
        train_model(sparse, train, bench_train_config(), seed=31)
        frac = sparse.active_expert_fraction(test.batch_at(np.arange(min(512, len(test)))))
        results["sparse top-2 of K=8"] = (evaluate_ranking(sparse, test), frac)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, format_float(metrics["auc"]), f"{frac:.2f}"]
        for name, (metrics, frac) in results.items()
    ]
    print_table(
        ["Variant", "AUC", "active expert fraction"],
        rows,
        title="X1 — sparsely-gated MoE (paper §V future work)",
    )

    dense_auc = results["dense K=8"][0]["auc"]
    sparse_auc = results["sparse top-2 of K=8"][0]["auc"]
    assert sparse_auc > 0.55, "sparse gating must still learn"
    assert sparse_auc > dense_auc - 0.03, "top-2 routing must stay competitive"
    assert results["sparse top-2 of K=8"][1] <= 0.3, "only ~2 of 8 experts may be active"


def test_ablation_adversarial_disagreement(benchmark, search_data):
    """X2 — expert-disagreement regularization (from Category-MoE [34])."""
    _, train, test = search_data
    bank = SeedBank(202)

    def run():
        plain = AWMoE(ModelConfig.small(), train.meta, bank.child("plain"))
        train_adversarial_aw_moe(plain, train, bench_train_config(), adversarial_weight=0.0, seed=32)
        regularized = AWMoE(ModelConfig.small(), train.meta, bank.child("adv"))
        train_adversarial_aw_moe(
            regularized, train, bench_train_config(), adversarial_weight=0.5, seed=32
        )
        batch = test.batch_at(np.arange(min(512, len(test))))
        return {
            "plain": (
                evaluate_ranking(plain, test),
                expert_correlation_loss(Tensor(plain.expert_scores(batch))).item(),
            ),
            "adversarial": (
                evaluate_ranking(regularized, test),
                expert_correlation_loss(Tensor(regularized.expert_scores(batch))).item(),
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, format_float(metrics["auc"]), format_float(corr)]
        for name, (metrics, corr) in results.items()
    ]
    print_table(
        ["Variant", "AUC", "expert correlation"],
        rows,
        title="X2 — adversarial expert-disagreement regularizer (paper §V)",
    )

    assert results["adversarial"][1] < results["plain"][1], (
        "the regularizer must decorrelate the experts"
    )
    assert results["adversarial"][0]["auc"] > 0.55


def test_ablation_sequence_augmentations(benchmark, search_data, search_splits):
    """X3 — mask (paper) vs reorder vs crop augmentations for the CL loss."""
    _, train, _ = search_data
    split = search_splits["long_tail_1"]
    bank = SeedBank(203)

    def run():
        aucs = {}
        for augmentation in ("mask", "crop", "reorder"):
            config = bench_train_config().with_contrastive(augmentation=augmentation)
            model = build_model("aw_moe", ModelConfig.small(), train.meta, bank.child(augmentation))
            train_model(model, train, config, seed=33)
            scores = predict_scores(model, split)
            aucs[augmentation] = session_auc_at_k(scores, split.label, split.session_id, k=10)
        return aucs

    aucs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, format_float(value)] for name, value in aucs.items()]
    print_table(
        ["Augmentation", "long-tail AUC@10"],
        rows,
        title="X3 — behaviour-sequence augmentations for contrastive learning (paper §V)",
    )

    for name, value in aucs.items():
        assert value > 0.55, f"{name} augmentation must keep the model useful"
    # Reordering is a no-op for a permutation-invariant gate, so it cannot
    # dominate the informative augmentations by a wide margin.
    assert max(aucs.values()) - min(aucs.values()) < 0.08
