"""§III-F — the deployed gate optimization: > 10x gate-resource saving.

The paper's initial design fed the target item to the gate, forcing one gate
evaluation per candidate; the deployed design uses user/query features only,
so one evaluation serves the whole session.  The benchmark counts FLOPs from
the paper's exact layer sizes (Fig. 4) and also measures wall-clock serving
latency through the engine simulator for both designs.
"""

import numpy as np

from repro.core import ModelConfig
from repro.serving import SearchEngine, compare_gate_strategies
from repro.utils import print_table


def test_serving_gate_optimization(benchmark, search_data, trained_models):
    world, _, test = search_data
    meta = test.meta

    report = benchmark.pedantic(
        lambda: compare_gate_strategies(
            ModelConfig.paper(), meta, items_per_session=40, seq_len=1000
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        ["Gate evaluations / session", "40", "1"],
        ["Gate MFLOPs / session",
         f"{report.gate_flops * 40 / 1e6:.1f}", f"{report.gate_flops / 1e6:.1f}"],
        ["Total MFLOPs / session",
         f"{report.per_item_total / 1e6:.1f}", f"{report.per_session_total / 1e6:.1f}"],
    ]
    print_table(
        ["Quantity", "gate-per-item design", "deployed (per-session)"],
        rows,
        title="§III-F — gate computation strategies (paper layer sizes, M=1000, 40 items)",
    )
    print(f"Gate-resource saving factor: {report.gate_saving_factor:.0f}x (paper: >10x)")
    print(f"End-to-end FLOP saving: {report.total_saving_factor:.2f}x")

    assert report.gate_saving_factor > 10.0, "paper's >10x gate saving must hold"
    assert report.total_saving_factor > 1.0

    # Wall-clock sanity on the engine simulator: mean latency per query is
    # finite and small at our scale (the paper reports ~20ms on its cluster).
    model, _ = trained_models["aw_moe"]
    engine = SearchEngine(world, model, np.random.default_rng(0))
    for user in range(10):
        engine.search(user, int(world.item_category[user % world.num_items]))
    print(f"Engine mean latency: {engine.avg_latency_ms:.1f} ms/query (CPU simulator)")
    assert engine.avg_latency_ms < 1000.0
