"""Table III — long-tail test set 1 (users with few historical behaviours).

Paper values (AUC): DNN 0.8274 ≈ DIN 0.8283 ≈ Category-MoE 0.8299 «
AW-MoE 0.8353 < AW-MoE & CL 0.8379 — the baselines bunch together (data
sparsity defeats their sequence modeling) and the contrastive variant shows
its largest, and only statistically significant, gain here.
"""

from _helpers import evaluate_on_split, print_model_table

PAPER_AUC = {
    "dnn": 0.8274,
    "din": 0.8283,
    "category_moe": 0.8299,
    "aw_moe": 0.8353,
    "aw_moe_cl": 0.8379,
}


def test_table3_long_tail_1(benchmark, trained_models, search_splits):
    split = search_splits["long_tail_1"]
    full_len = len(search_splits["full"])

    results = benchmark.pedantic(
        lambda: evaluate_on_split(trained_models, split, full_len),
        rounds=1,
        iterations=1,
    )
    print_model_table(
        "Table III — long-tail test set 1 (history <= 3 behaviours)",
        results,
        split,
        PAPER_AUC,
    )

    auc = {name: results[name]["auc"] for name in results}
    baselines = max(auc["dnn"], auc["din"], auc["category_moe"])
    # Shape: the AW-MoE family leads on long-tail users.
    assert max(auc["aw_moe"], auc["aw_moe_cl"]) > baselines, (
        "AW-MoE variants must beat every baseline on long-tail users"
    )
    assert auc["aw_moe_cl"] > min(auc["dnn"], auc["din"], auc["category_moe"]), (
        "contrastive learning must not fall below the baseline bunch"
    )
