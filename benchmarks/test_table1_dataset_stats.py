"""Table I — statistics of the (synthetic stand-in for the) JD dataset.

Paper reference values (Table I):
  training set 6.69M sessions / 13.47M examples at 1:1,
  full test 76.9k sessions at 1:10 (11.4 examples/session),
  long-tail test 1 at 1:6, long-tail test 2 at 1:13.
Our world is ~3 orders of magnitude smaller; the benchmark checks the same
*structure*: balanced training split, imbalanced test splits, long-tail
subsets much smaller than the full test set.
"""

from repro.data.stats import table1_rows
from repro.utils import print_table


def test_table1_dataset_statistics(benchmark, search_data, search_splits):
    _, train, _ = search_data

    def build_rows():
        splits = {"Training set": train}
        splits["Full test set"] = search_splits["full"]
        splits["Long-tail test 1"] = search_splits["long_tail_1"]
        splits["Long-tail test 2"] = search_splits["long_tail_2"]
        return table1_rows(splits), splits

    rows, splits = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_table(
        ["Statistic", "Training set", "Full test", "Long-tail 1", "Long-tail 2"],
        rows,
        title="Table I — dataset statistics (synthetic JD-like world)",
    )

    train_set = splits["Training set"]
    full = splits["Full test set"]
    lt1 = splits["Long-tail test 1"]
    lt2 = splits["Long-tail test 2"]

    # Shape checks mirroring the paper's Table I.
    assert abs(train_set.label.mean() - 0.5) < 0.01, "training split must be 1:1"
    assert full.pos_neg_ratio() > 3.0, "test split keeps all impressions (imbalanced)"
    assert len(lt1) < 0.5 * len(full)
    assert len(lt2) < 0.5 * len(full)
    assert train_set.examples_per_session() < full.examples_per_session()
