"""Chaos soak: the online loop under the default fault schedule (PR 8).

Drives the full serve → learn → deploy loop through
:func:`repro.faults.default_chaos_plan` — injected retrieval latency, a
shard crash burst, torn registry-index and click-log writes, a corrupted
checkpoint, transient train/canary failures, and a crash mid-hot-swap —
and audits the robustness contract:

* **zero dropped requests**: every submitted query is answered from some
  tier of the degradation ladder (full / prefilter / popularity);
* at least one automatic **rollback** fires (the corrupted candidate is
  quarantined, the torn swap is rolled back) and the loop keeps promoting
  afterwards;
* both persistence surfaces (registry index, click log) **restart clean**
  after the beating.

A second benchmark gates the cost of the fault layer itself: serving with
the injector disabled and no degradation policy must stay within **5%** of
the pre-fault-layer hot path, and an *armed-but-empty* injector plus a
generous policy must produce bitwise-identical rankings (the acceptance
criterion of the PR).  The timing gate reuses the jitter-aware convention
of ``test_serving_throughput.py``: hard assertions only on quiet machines,
direction checks + artifact warnings elsewhere.

Artifacts (CI-uploaded): ``chaos_soak.json`` (the soak report),
``fault_events.jsonl`` (every injected fault, one JSON line each), and
``chaos_dashboard.html`` (the fleet dashboard rendered after the soak —
degradation tiers, breaker states, rollback events on the deployment
timeline).  ``REPRO_SMOKE=1`` shrinks cycles and traffic for CI.
"""

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np

from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig, make_search_datasets
from repro.faults import (
    FaultInjector,
    FaultPlan,
    default_chaos_plan,
    default_fault_alert_rules,
    run_chaos_soak,
)
from repro.obs import AlertManager
from repro.online import (
    CanaryGate,
    ClickLog,
    IncrementalTrainer,
    ModelRegistry,
    OnlineLoop,
    PositionBiasedClickModel,
)
from repro.serving import (
    DegradationPolicy,
    ManualClock,
    MicroBatcher,
    SearchEngine,
    SessionCache,
    ShardedCluster,
    ZipfLoadGenerator,
    replay,
)
from repro.utils import SeedBank, print_table

SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"
STRICT_TIMING = not SMOKE and not os.environ.get("CI")

SEED = 29
NUM_SHARDS = 2
NUM_CYCLES = 3 if SMOKE else 4
QUERIES_PER_CYCLE = 80 if SMOKE else 200
WARMUP_SESSIONS = 250 if SMOKE else 600
OVERHEAD_QUERIES = 80 if SMOKE else 400

_ARTIFACTS = Path(__file__).parent / "artifacts"
ARTIFACT = _ARTIFACTS / "chaos_soak.json"
FAULT_EVENTS = _ARTIFACTS / "fault_events.jsonl"
DASHBOARD = _ARTIFACTS / "chaos_dashboard.html"


def _build_world_and_model():
    config = WorldConfig.unit() if SMOKE else WorldConfig.small()
    world, warmup_train, _ = make_search_datasets(
        config, WARMUP_SESSIONS, 50, seed=SEED
    )
    model_config = ModelConfig.unit() if SMOKE else ModelConfig.small()
    bank = SeedBank(SEED)

    def factory(tag="candidate"):
        return build_model("aw_moe", model_config, warmup_train.meta, bank.child(tag))

    seed_model = factory("seed")
    train_model(
        seed_model,
        warmup_train,
        TrainConfig(epochs=1, batch_size=128, learning_rate=1.5e-3),
        seed=77,
    )
    return world, seed_model, factory, bank


def test_chaos_soak(tmp_path):
    world, seed_model, factory, bank = _build_world_and_model()
    clock = ManualClock()
    injector = FaultInjector(
        default_chaos_plan(seed=SEED, shards=NUM_SHARDS),
        sleeper=clock.advance,
        clock=clock.now,
    )
    alerts = AlertManager(default_fault_alert_rules())
    cluster = ShardedCluster(
        world,
        seed_model,
        num_shards=NUM_SHARDS,
        seed=SEED,
        max_batch_size=8,
        flush_deadline_ms=10.0,
        cache_capacity=1024,
        clock=clock,
        policy=DegradationPolicy(deadline_ms=100.0),
        injector=injector,
        alerts=alerts,
    )
    injector.events = cluster.control.events
    loop = OnlineLoop(
        world=world,
        cluster=cluster,
        trainer=IncrementalTrainer(
            seed_model,
            TrainConfig(epochs=1, batch_size=128, learning_rate=1.5e-3),
            seed=SEED,
            injector=injector,
        ),
        model_factory=factory,
        registry=ModelRegistry(
            str(tmp_path / "registry"), clock=clock.now, injector=injector
        ),
        canary=CanaryGate(tolerance=1.0, injector=injector),
        click_model=PositionBiasedClickModel(world, bank.child("clicks")),
        click_log=ClickLog(path=str(tmp_path / "clicks.jsonl"), injector=injector),
        clock=clock,
        seed=SEED,
        alerts=alerts,
        watch_cycles=2,
    )
    generator = ZipfLoadGenerator(
        bank.child("traffic"), world=world, zipf_exponent=1.1, target_qps=300.0
    )
    result = run_chaos_soak(
        loop,
        generator,
        cycles=NUM_CYCLES,
        events_per_cycle=QUERIES_PER_CYCLE,
        injector=injector,
    )

    # -- the robustness contract ----------------------------------------
    assert result["dropped"] == 0, "every submitted request must be answered"
    assert result["faults_fired"] > 0, "the chaos plan must actually fire"
    assert result["rollbacks"] >= 1, "the corrupted candidate must roll back"
    assert result["event_counts"].get("rollback", 0) >= 1
    assert result["event_counts"].get("quarantine", 0) >= 1
    # The loop keeps working after its incidents: something promoted.
    assert loop.production_version is not None
    assert any(report["promoted"] for report in result["reports"])
    # Persistence restarts clean after torn writes and a corrupt checkpoint.
    reloaded = ModelRegistry(str(tmp_path / "registry"), clock=lambda: 0.0)
    assert reloaded.recovery is None
    assert reloaded.production.version == loop.production_version
    recovered = ClickLog(path=str(tmp_path / "clicks.jsonl"))
    assert recovered.dropped_records == 2  # the two torn appends
    assert len(recovered) == result["submitted"] - 2

    # -- artifacts --------------------------------------------------------
    _ARTIFACTS.mkdir(parents=True, exist_ok=True)
    report = {
        "smoke": SMOKE,
        "seed": SEED,
        "soak": result,
        "restart": {
            "registry_clean": reloaded.recovery is None,
            "click_sessions_recovered": recovered.recovered_sessions,
            "click_records_dropped": recovered.dropped_records,
        },
    }
    ARTIFACT.write_text(json.dumps(report, indent=2))
    injector.to_jsonl(str(FAULT_EVENTS))
    cluster.dashboard(str(DASHBOARD))

    degradation = result["degradation"]
    print_table(
        ["Metric", "Value"],
        [
            ["submitted", str(result["submitted"])],
            ["answered", str(result["answered"])],
            ["dropped", str(result["dropped"])],
            ["faults fired", str(result["faults_fired"])],
            ["rollbacks", str(result["rollbacks"])],
            ["shed", str(degradation["shed"])],
            ["degraded share", f"{degradation['degraded_share']:.2%}"],
            ["open breakers", str(result["open_breakers"])],
        ],
        title=f"Chaos soak — {NUM_CYCLES} cycles x {QUERIES_PER_CYCLE} queries "
        f"(artifact: {ARTIFACT.name})",
    )


def test_fault_layer_overhead():
    """The fault layer must be free when off, and invisible when empty.

    Three configurations replay identical Zipf traffic through the
    micro-batched serving path:

    * ``baseline`` — no injector, no policy (the pre-PR hot path);
    * ``disabled`` — the defaults spelled explicitly (``NULL_INJECTOR``
      semantics): must be bitwise identical and is the <5% gate subject;
    * ``armed-empty`` — a real :class:`FaultInjector` with an empty plan
      plus a generous :class:`DegradationPolicy`: pays the per-point visit
      scan and the budget clock reads, must still rank identically.
    """
    config = WorldConfig.unit() if SMOKE else WorldConfig.small()
    world, warmup_train, _ = make_search_datasets(config, WARMUP_SESSIONS, 50, seed=SEED)
    model = build_model(
        "aw_moe",
        ModelConfig.unit() if SMOKE else ModelConfig.small(),
        warmup_train.meta,
        np.random.default_rng(SEED),
    )
    events = ZipfLoadGenerator(
        np.random.default_rng(17), world=world, zipf_exponent=1.2
    ).generate(OVERHEAD_QUERIES)
    repeats = 2 if SMOKE else 3

    def run_once(injector, policy):
        engine = SearchEngine(
            world, model, np.random.default_rng(7), injector=injector
        )
        batcher = MicroBatcher(
            engine,
            max_batch_size=16,
            flush_deadline_ms=50.0,
            cache=SessionCache(2048),
            injector=injector,
            policy=policy,
        )
        start = time.perf_counter()
        results = replay(batcher, events)
        seconds = time.perf_counter() - start
        assert len(results) == OVERHEAD_QUERIES
        return results, seconds

    configs = {
        "baseline": lambda: (None, None),
        "disabled": lambda: (None, None),
        "armed-empty": lambda: (
            FaultInjector(FaultPlan()),
            DegradationPolicy(deadline_ms=1e9),
        ),
    }
    samples = {name: [] for name in configs}
    rankings = {}
    # Interleave configurations inside each repeat (the jitter-aware
    # pattern of test_serving_throughput.py): monotonic machine drift then
    # cancels out of the ratios instead of landing on one side.
    for _ in range(repeats):
        for name, make_args in configs.items():
            results, seconds = run_once(*make_args())
            samples[name].append(seconds)
            rankings.setdefault(name, results)

    # Bitwise identity: disabled and armed-empty match the baseline exactly.
    for name in ("disabled", "armed-empty"):
        for got, want in zip(rankings[name], rankings["baseline"]):
            assert got.user == want.user
            assert got.tier == want.tier == "full"
            np.testing.assert_array_equal(got.items, want.items)
            np.testing.assert_array_equal(got.scores, want.scores)

    baseline = min(samples["baseline"])
    disabled = min(samples["disabled"])
    armed = min(samples["armed-empty"])
    disabled_overhead = disabled / baseline - 1.0
    armed_overhead = armed / baseline - 1.0
    jitter = max(samples["baseline"]) / min(samples["baseline"]) - 1.0
    quiet = jitter < 0.05
    if STRICT_TIMING and quiet:
        assert disabled_overhead < 0.05, (
            f"disabled fault layer costs {disabled_overhead:.1%} (gate: <5%)"
        )
    elif disabled_overhead >= 0.05:
        warnings.warn(
            f"disabled fault-layer overhead {disabled_overhead:.1%} >= 5% "
            f"(baseline jitter {jitter:.1%}; not gated on this machine)"
        )
    print_table(
        ["Config", "Best seconds", "Overhead"],
        [
            ["baseline", f"{baseline:.4f}", "-"],
            ["disabled", f"{disabled:.4f}", f"{disabled_overhead:+.2%}"],
            ["armed-empty", f"{armed:.4f}", f"{armed_overhead:+.2%}"],
        ],
        title="Fault-layer overhead (identical rankings asserted)",
    )
