"""Training-throughput benchmark: the fast path vs the eager reference.

Measures what the serve→learn→swap loop actually pays for (§III-F): raw
``train_step`` throughput on the AW-MoE contrastive configuration, and the
wall time of a full :class:`~repro.online.incremental.IncrementalTrainer`
refresh cycle.  The fast path (``TrainConfig.fast_path``) runs packed-expert
GEMMs, fused linear kernels, the shared-trunk contrastive pair, and the
gradient-buffer arena; the eager path is the bitwise-reproducible reference.

Writes ``benchmarks/artifacts/training_throughput.json`` and gates the
speedup *ratios* (machine-portable, both sides measured in the same run)
against ``benchmarks/reference/training_throughput.json`` via
:func:`_helpers.compare_to_artifact` — a >30% ratio regression is a red
build unless ``REPRO_ALLOW_REGRESSION=1``.

``REPRO_SMOKE=1`` shrinks the dataset and timing repeats so CI can gate the
training path on every push.
"""

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np

from _helpers import compare_to_artifact
from repro.core import ModelConfig, TrainConfig, build_model
from repro.core.trainer import build_optimizers, build_strategy, train_step
from repro.data import WorldConfig, make_search_datasets
from repro.data.dataset import iterate_batches
from repro.nn import GradArena
from repro.online import IncrementalTrainer
from repro.utils import SeedBank, print_table

SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"
STRICT_TIMING = not SMOKE and not os.environ.get("CI")
TRAIN_SESSIONS = 400 if SMOKE else 2000
REFRESH_SESSIONS = 120 if SMOKE else 500
TIMING_REPEATS = 1 if SMOKE else 3
BATCH_SIZE = 256
_SUFFIX = "_smoke" if SMOKE else ""
ARTIFACT = Path(__file__).parent / "artifacts" / f"training_throughput{_SUFFIX}.json"
REFERENCE = Path(__file__).parent / "reference" / "training_throughput.json"


def _train_config(fast: bool) -> TrainConfig:
    # The paper's training configuration: contrastive learning on, mask
    # augmentation — the heaviest (and production-default) step.
    return TrainConfig(
        epochs=1,
        batch_size=BATCH_SIZE,
        learning_rate=1.5e-3,
        contrastive=True,
        fast_path=fast,
    )


def _steps_per_second(model, batches, config) -> tuple:
    optimizers = build_optimizers(model, config)
    strategy = build_strategy(config)
    bank = SeedBank(7)
    cl_rng = bank.child("cl")
    arena = GradArena() if config.fast_path else None
    model.train()
    for batch in batches[:2]:  # warm caches, arena, BLAS threads
        train_step(model, batch, config, optimizers, strategy, cl_rng, arena)
    best = float("inf")
    final_loss = 0.0
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        for batch in batches:
            metrics = train_step(model, batch, config, optimizers, strategy, cl_rng, arena)
        best = min(best, (time.perf_counter() - start) / len(batches))
        final_loss = metrics["loss"]
    return 1.0 / best, final_loss


def test_training_throughput():
    world, train, _ = make_search_datasets(
        WorldConfig.small(), TRAIN_SESSIONS, 50, seed=3
    )
    bank = SeedBank(101)
    batches = list(
        iterate_batches(train, BATCH_SIZE, rng=bank.child("shuffle"), drop_last=True)
    )
    assert len(batches) >= 2, "world too small to fill two training batches"

    results = {}
    for label, fast in (("eager", False), ("fast", True)):
        model = build_model(
            "aw_moe", ModelConfig.small(), train.meta, SeedBank(101).child("model")
        )
        sps, loss = _steps_per_second(model, batches, _train_config(fast))
        results[label] = {"steps_per_sec": sps, "final_loss": loss}
    step_speedup = results["fast"]["steps_per_sec"] / results["eager"]["steps_per_sec"]

    # -- refresh-cycle wall time (the online loop's unit of work) ---------
    _, refresh_window, _ = make_search_datasets(
        WorldConfig.small(), REFRESH_SESSIONS, 20, seed=11
    )
    refresh = {}
    for label, fast in (("eager", False), ("fast", True)):
        model = build_model(
            "aw_moe", ModelConfig.small(), refresh_window.meta, SeedBank(55).child("model")
        )
        trainer = IncrementalTrainer(model, _train_config(fast), seed=5)
        best = float("inf")
        for _ in range(TIMING_REPEATS):
            start = time.perf_counter()
            trainer.update(refresh_window)
            best = min(best, time.perf_counter() - start)
        refresh[label] = {"seconds": best}
    refresh_speedup = refresh["eager"]["seconds"] / refresh["fast"]["seconds"]

    # The two paths optimize the same objective: after one epoch over
    # identical batches and rng streams the losses must agree tightly (the
    # bitwise parity claims live in tests/core/test_fast_training.py).
    assert np.isclose(
        results["fast"]["final_loss"], results["eager"]["final_loss"], rtol=5e-3
    ), "fast path diverged from the eager objective"

    report = {
        "smoke": SMOKE,
        "train_sessions": TRAIN_SESSIONS,
        "batch_size": BATCH_SIZE,
        "train_step": {
            "eager_steps_per_sec": results["eager"]["steps_per_sec"],
            "fast_steps_per_sec": results["fast"]["steps_per_sec"],
            "speedup": step_speedup,
        },
        "refresh_cycle": {
            "sessions": REFRESH_SESSIONS,
            "eager_seconds": refresh["eager"]["seconds"],
            "fast_seconds": refresh["fast"]["seconds"],
            "speedup": refresh_speedup,
        },
    }
    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2))
    # Speedup ratios are properties of the code, not the machine — the
    # steps/sec ratio is gated hard even in smoke mode (this is the
    # benchmark-regression gate CI relies on; raw steps/sec stays
    # informational).  The refresh cycle is a fraction of a second in smoke
    # mode, too short to hard-gate on shared runners: fail_tolerance=1.0
    # keeps it warn-only.
    regressions = compare_to_artifact(
        report, REFERENCE, [("train_step", "speedup")]
    ) + compare_to_artifact(
        report, REFERENCE, [("refresh_cycle", "speedup")], fail_tolerance=1.0
    )

    print_table(
        ["Path", "eager", "fast", "speedup"],
        [
            [
                "train_step throughput",
                f"{results['eager']['steps_per_sec']:.1f} steps/s",
                f"{results['fast']['steps_per_sec']:.1f} steps/s",
                f"{step_speedup:.2f}x",
            ],
            [
                "refresh-cycle wall time",
                f"{refresh['eager']['seconds']:.2f} s",
                f"{refresh['fast']['seconds']:.2f} s",
                f"{refresh_speedup:.2f}x",
            ],
        ],
        title=f"Training throughput — artifact: {ARTIFACT.name}"
        + (" [smoke]" if SMOKE else ""),
    )
    if regressions:
        print("regression warnings:", *regressions, sep="\n  ")

    # Acceptance: the fast path must at least double train-step throughput
    # on a quiet machine; shared CI runners check direction plus the ratio
    # gate above.
    if STRICT_TIMING:
        assert step_speedup >= 2.0
        assert refresh_speedup > 1.5
    else:
        assert step_speedup > 1.2
        if refresh_speedup < 1.0:
            warnings.warn(
                f"refresh-cycle speedup {refresh_speedup:.2f} < 1.0 "
                "(timing noise or a real regression — see the artifact)",
                stacklevel=2,
            )
