"""Table IV — long-tail test set 2 (elderly users).

Paper values (AUC): DNN 0.7621 < DIN 0.7761 ≈ Category-MoE 0.7772 <
AW-MoE 0.7849 < AW-MoE & CL 0.7873.  Elderly users have systematically
shorter histories, so this split confirms Table III's long-tail story on an
independent selection criterion.
"""

from _helpers import evaluate_on_split, print_model_table

PAPER_AUC = {
    "dnn": 0.7621,
    "din": 0.7761,
    "category_moe": 0.7772,
    "aw_moe": 0.7849,
    "aw_moe_cl": 0.7873,
}


def test_table4_long_tail_2(benchmark, trained_models, search_splits):
    split = search_splits["long_tail_2"]
    full_len = len(search_splits["full"])

    results = benchmark.pedantic(
        lambda: evaluate_on_split(trained_models, split, full_len),
        rounds=1,
        iterations=1,
    )
    print_model_table(
        "Table IV — long-tail test set 2 (elderly users)",
        results,
        split,
        PAPER_AUC,
    )

    auc = {name: results[name]["auc"] for name in results}
    baselines = max(auc["dnn"], auc["din"], auc["category_moe"])
    assert max(auc["aw_moe"], auc["aw_moe_cl"]) > baselines, (
        "AW-MoE variants must beat every baseline on elderly users"
    )
    for name, value in auc.items():
        assert value > 0.5, f"{name} must beat random ranking"
