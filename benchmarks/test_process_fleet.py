"""Process fleet: multi-core serving over shared-memory slabs (PR 9).

Benchmarks the supervised worker-process fleet against the in-process
shard cluster it generalizes:

* **identity** — the process fleet must return bitwise-identical rankings
  to the in-process cluster (same seeds, same per-shard SeedBank streams,
  zero-copy weight slabs notwithstanding);
* **throughput** — QPS for the in-process cluster vs 1-worker and
  N-worker process fleets.  On multi-core hosts the N-worker fleet should
  scale past the in-process ceiling; on the 1-CPU CI runner the artifact
  records the per-backend numbers and the IPC overhead honestly instead
  of asserting a scaling that physically cannot appear;
* **chaos soak** — :func:`repro.faults.default_fleet_chaos_plan` (worker
  OOM-kill mid-batch, hung-worker heartbeat loss, torn slab publish,
  transient respawn failure) driven through :func:`run_fleet_soak` with a
  hot swap in the middle: zero dropped requests, at least one automatic
  restart, no leaked shared-memory segments.

The whole file runs under an internal wall-clock watchdog (a hung fleet
must fail loudly, not eat the CI job; the CI step adds a hard ``timeout``
on top).  Artifacts (CI-uploaded): ``process_fleet.json`` (the combined
report) and ``fleet_events.jsonl`` (the supervisor's control-plane event
log, one JSON object per line).  ``REPRO_SMOKE=1`` shrinks world and
traffic for CI.
"""

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from _helpers import compare_to_artifact
from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig, make_search_datasets
from repro.faults import default_fleet_chaos_plan, run_fleet_soak
from repro.infer import shared_memory_available
from repro.serving import FleetSupervisor, ZipfLoadGenerator, build_fleet
from repro.serving.fleet import fleet_config
from repro.utils import SeedBank, print_table

SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"

SEED = 31
NUM_WORKERS = 2 if SMOKE else 3
BENCH_EVENTS = 150 if SMOKE else 600
SOAK_EVENTS = 120 if SMOKE else 300
WATCHDOG_S = 180.0 if SMOKE else 600.0

_ARTIFACTS = Path(__file__).parent / "artifacts"
ARTIFACT = _ARTIFACTS / ("process_fleet_smoke.json" if SMOKE else "process_fleet.json")
EVENTS_LOG = _ARTIFACTS / (
    "fleet_events_smoke.jsonl" if SMOKE else "fleet_events.jsonl"
)
REFERENCE = Path(__file__).parent / "reference" / "process_fleet.json"

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)

_START = time.monotonic()


def _watchdog(stage: str) -> None:
    elapsed = time.monotonic() - _START
    if elapsed > WATCHDOG_S:
        raise RuntimeError(
            f"fleet benchmark watchdog: {elapsed:.0f}s > {WATCHDOG_S:.0f}s "
            f"budget at stage {stage!r}"
        )


def _build_world_and_models():
    config = WorldConfig.unit() if SMOKE else WorldConfig.small()
    world, warmup_train, _ = make_search_datasets(
        config, 250 if SMOKE else 600, 50, seed=SEED
    )
    model_config = ModelConfig.unit() if SMOKE else ModelConfig.small()
    bank = SeedBank(SEED)
    serve_model = build_model("aw_moe", model_config, warmup_train.meta, bank.child("serve"))
    train_model(
        serve_model,
        warmup_train,
        TrainConfig(epochs=1, batch_size=128, learning_rate=1.5e-3),
        seed=77,
    )
    swap_model = build_model("aw_moe", model_config, warmup_train.meta, bank.child("swap"))
    return world, serve_model, swap_model, bank


def _drive(fleet, traffic):
    results = []
    start = time.perf_counter()
    for event in traffic:
        results.extend(fleet.submit(event.user, event.query_category))
    results.extend(fleet.flush())
    elapsed = time.perf_counter() - start
    return results, elapsed


def _identity_key(results):
    ordered = sorted(results, key=lambda r: (r.user, r.query_category))
    return (
        [(r.user, r.query_category) for r in ordered],
        np.concatenate([r.items for r in ordered]),
        np.concatenate([r.scores for r in ordered]),
    )


def test_process_fleet():
    world, serve_model, swap_model, bank = _build_world_and_models()
    generator = ZipfLoadGenerator(
        bank.child("traffic"), world=world, zipf_exponent=1.1, target_qps=300.0
    )
    traffic = generator.generate(BENCH_EVENTS)
    config = fleet_config(num_workers=NUM_WORKERS, seed=SEED)

    # -- identity + in-process baseline ---------------------------------
    inproc = build_fleet(world, serve_model, config, backend="inprocess")
    inproc_results, inproc_s = _drive(inproc, traffic)
    expected = _identity_key(inproc_results)
    _watchdog("inprocess")

    fleet = build_fleet(world, serve_model, config, backend="process")
    fleet_results, multi_s = _drive(fleet, traffic)
    got = _identity_key(fleet_results)
    fleet.stop()
    # Same requests, same routing, same ranking order.  Scores are allowed
    # 1-ULP float32 jitter: zero-copy slab views sit at different addresses
    # than fresh allocations, and BLAS small-gemm kernels peel loops by
    # alignment, so a fraction of a percent of scores can differ in the
    # last bit (the ranking itself must not move).
    assert got[0] == expected[0]
    np.testing.assert_array_equal(got[1], expected[1])
    np.testing.assert_allclose(got[2], expected[2], rtol=0, atol=1e-6)
    score_exact = float(np.mean(got[2] == expected[2]))
    _watchdog("process-multi")

    single = build_fleet(
        world, serve_model, fleet_config(num_workers=1, seed=SEED), backend="process"
    )
    single_results, single_s = _drive(single, traffic)
    single.stop()
    assert len(single_results) == len(traffic)
    _watchdog("process-single")

    cores = os.cpu_count() or 1
    qps = {
        "inprocess": len(traffic) / inproc_s,
        "process_1_worker": len(traffic) / single_s,
        f"process_{NUM_WORKERS}_workers": len(traffic) / multi_s,
    }
    scaling = multi_s and single_s / multi_s
    if cores >= 2 * NUM_WORKERS and scaling < 1.1:
        warnings.warn(
            f"process fleet did not scale on {cores} cores: "
            f"{NUM_WORKERS}-worker speedup {scaling:.2f}x over 1 worker",
            UserWarning,
        )

    # -- chaos soak ------------------------------------------------------
    plan = default_fleet_chaos_plan(seed=SEED, workers=NUM_WORKERS)
    soak_fleet = FleetSupervisor(
        world,
        serve_model,
        fleet_config(
            num_workers=NUM_WORKERS,
            seed=SEED,
            heartbeat_interval_s=0.02,
            heartbeat_deadline_s=0.25,
            restart_backoff_s=0.02,
        ),
        version="v1",
        fault_plan=plan,
    )
    try:
        soak = run_fleet_soak(
            soak_fleet,
            generator,
            events=SOAK_EVENTS,
            swap_models=[(swap_model, "v2")],
            settle_s=0.5,
        )
        supervisor_events = [
            event.to_dict() for event in soak_fleet.control.events.events()
        ]
    finally:
        soak_fleet.stop()
    _watchdog("soak")

    assert soak["dropped"] <= 0, "zero drops: every request must be answered"
    assert soak["restarts"] >= 1, "the chaos plan must force a restart"
    assert soak["swaps"] == 1 and soak["generation"] == 1
    leaked = [n for n in os.listdir("/dev/shm") if n.startswith("repro_slab_")]
    assert not leaked, f"leaked shared-memory segments: {leaked}"

    # -- artifacts -------------------------------------------------------
    _ARTIFACTS.mkdir(parents=True, exist_ok=True)
    report = {
        "smoke": SMOKE,
        "seed": SEED,
        "cpu_count": cores,
        "num_workers": NUM_WORKERS,
        "events": len(traffic),
        "identity": {
            "ranking_order_exact": True,
            "scores_exact_fraction": score_exact,
            "score_atol": 1e-6,
        },
        "qps": qps,
        "speedup_multi_vs_single": scaling,
        "soak": soak,
        "elapsed_s": time.monotonic() - _START,
    }
    ARTIFACT.write_text(json.dumps(report, indent=2))
    with EVENTS_LOG.open("w", encoding="utf-8") as handle:
        for record in supervisor_events:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    # The score-exactness fraction is a property of the code (slab views +
    # BLAS alignment), hard-gated against the checked-in reference; the
    # multi-vs-single speedup is IPC-overhead-sensitive wall clock, too
    # noisy on shared runners to hard-gate: fail_tolerance=1.0 keeps it
    # warn-only (and on multi-core hardware it can only improve).
    compare_to_artifact(
        report, REFERENCE, [("identity", "scores_exact_fraction")]
    )
    compare_to_artifact(
        report, REFERENCE, [("speedup_multi_vs_single",)], fail_tolerance=1.0
    )

    print_table(
        ["Metric", "Value"],
        [
            ["cpu cores", str(cores)],
            ["inprocess qps", f"{qps['inprocess']:.0f}"],
            ["1-worker qps", f"{qps['process_1_worker']:.0f}"],
            [
                f"{NUM_WORKERS}-worker qps",
                f"{qps[f'process_{NUM_WORKERS}_workers']:.0f}",
            ],
            ["soak submitted", str(soak["submitted"])],
            ["soak answered", str(soak["answered"])],
            ["soak restarts", str(soak["restarts"])],
            ["soak faults (supervisor)", str(soak["faults_fired_supervisor"])],
            ["recovered segments", str(len(soak["recovered_segments"]))],
        ],
        title=f"process fleet — {NUM_WORKERS} workers, {len(traffic)} events",
    )
