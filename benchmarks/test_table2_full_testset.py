"""Table II — the five compared models on the full test set.

Paper values (JD full test, AUC): DNN 0.8201 < DIN 0.8361 < Category-MoE
0.8388 < AW-MoE 0.8459 < AW-MoE & CL 0.8472.  The benchmark reproduces the
shape: DNN strictly worst, the user-oriented AW-MoE family at the top.
"""

from _helpers import evaluate_on_split, print_model_table

PAPER_AUC = {
    "dnn": 0.8201,
    "din": 0.8361,
    "category_moe": 0.8388,
    "aw_moe": 0.8459,
    "aw_moe_cl": 0.8472,
}


def test_table2_full_test_set(benchmark, trained_models, search_splits):
    full = search_splits["full"]

    results = benchmark.pedantic(
        lambda: evaluate_on_split(trained_models, full, len(full)),
        rounds=1,
        iterations=1,
    )
    print_model_table(
        "Table II — full test set (synthetic JD-like world)",
        results,
        full,
        PAPER_AUC,
    )

    auc = {name: results[name]["auc"] for name in results}
    # Robust shape of the paper's Table II (the sub-half-point gaps between
    # the middle rows — DIN vs Category-MoE — sit below the seed-noise floor
    # at CPU scale and are reported but not asserted):
    assert max(auc["aw_moe"], auc["aw_moe_cl"]) == max(auc.values()), (
        "an AW-MoE variant must be the strongest model"
    )
    assert auc["dnn"] < max(auc.values()) - 0.005, "DNN must not be the best model"
    assert auc["aw_moe_cl"] > auc["dnn"] + 0.005, (
        "the full method must clearly beat the weakest baseline"
    )
    for name, value in auc.items():
        assert 0.5 < value < 1.0, f"{name} must beat random ranking"
