"""Serving-throughput benchmarks: batching, caching, compiled inference,
and the observability overhead/artifact runs.

Four benchmarks share this module:

* :func:`test_serving_throughput` replays identical Zipf-distributed
  traffic (the repeated-user regime of production search, §III-F) through
  the single-query loop vs the micro-batcher + session cache, writing
  ``benchmarks/artifacts/serving_throughput.json``;
* :func:`test_compiled_inference_speedup` measures the compiled inference
  path (:mod:`repro.infer`) against the eager ``Tensor`` forward — raw
  single-query scoring, a mixed micro-batch flush, and end-to-end fleet
  QPS on identical traffic — writing
  ``benchmarks/artifacts/compiled_inference.json`` and gating the speedup
  ratios (via :func:`benchmarks._helpers.compare_to_artifact`) against the
  checked-in reference artifact: >20% down warns, and a >30% drop of the
  single-query ratio fails the build (``REPRO_ALLOW_REGRESSION=1`` to
  override).  It also profiles every fused kernel and gates each step's
  *time share* against the reference
  (:func:`benchmarks._helpers.compare_profile_shares`);
* :func:`test_tracing_overhead` guards the observability bargain: with no
  tracer sampling, the instrumented batched path must stay within 5% of
  the uninstrumented one (``benchmarks/artifacts/observability.json``);
* :func:`test_traced_fleet_artifacts` runs fully sampled traced traffic
  through a cascade-backed fleet and exports the JSONL trace plus metrics
  snapshots (JSON + Prometheus text) as CI artifacts.

``REPRO_SMOKE=1`` shrinks query counts and timing repeats so CI can
exercise the compile path on every push.
"""

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np

from _helpers import compare_profile_shares, compare_to_artifact
from repro.infer import PlanProfiler, compile_model
from repro.obs import JsonlTraceExporter, ShadowRecallMonitor, SloTracker, Tracer
from repro.retrieval import CascadeConfig
from repro.serving import (
    MetricsSink,
    MicroBatcher,
    SearchEngine,
    SessionCache,
    ShardedCluster,
    ZipfLoadGenerator,
    replay,
)
from repro.utils import print_table

SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"
#: Hard speedup gates only run on quiet machines: shared CI runners (GitHub
#: sets ``CI=true``) get direction checks instead, plus the
#: :func:`compare_to_artifact` regression warning — wall-clock ratios there
#: measure the neighbourhood, not the code.
STRICT_TIMING = not SMOKE and not os.environ.get("CI")
NUM_QUERIES = 80 if SMOKE else 400
MAX_BATCH = 16
# Smoke runs write to their own files so a full-fidelity artifact produced
# earlier in the same CI job is never clobbered before upload.
_SUFFIX = "_smoke" if SMOKE else ""
_ARTIFACTS = Path(__file__).parent / "artifacts"
ARTIFACT = _ARTIFACTS / f"serving_throughput{_SUFFIX}.json"
COMPILED_ARTIFACT = _ARTIFACTS / f"compiled_inference{_SUFFIX}.json"
COMPILED_REFERENCE = Path(__file__).parent / "reference" / "compiled_inference.json"
OBSERVABILITY_ARTIFACT = _ARTIFACTS / f"observability{_SUFFIX}.json"
TRACE_ARTIFACT = _ARTIFACTS / f"trace{_SUFFIX}.jsonl"
METRICS_SNAPSHOT = _ARTIFACTS / f"metrics_snapshot{_SUFFIX}.json"
PROMETHEUS_SNAPSHOT = _ARTIFACTS / f"metrics_snapshot{_SUFFIX}.prom"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _best_seconds(fn, loops: int, repeats: int) -> float:
    """Best-of-``repeats`` mean seconds per call over ``loops`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, (time.perf_counter() - start) / loops)
    return best


def test_serving_throughput(search_data, trained_models):
    world, _, _ = search_data
    model, _ = trained_models["aw_moe"]
    events = ZipfLoadGenerator(
        np.random.default_rng(17), world=world, zipf_exponent=1.2
    ).generate(NUM_QUERIES)

    # -- single-query baseline ------------------------------------------
    single_engine = SearchEngine(world, model, np.random.default_rng(7))
    single_metrics = MetricsSink()

    def run_single():
        for event in events:
            result = single_engine.search(event.user, event.query_category)
            single_metrics.record_query(result.latency_ms)

    _, single_seconds = _timed(run_single)

    # -- micro-batched + session cache ----------------------------------
    batched_engine = SearchEngine(world, model, np.random.default_rng(7))
    cache = SessionCache(2048)
    batcher = MicroBatcher(
        batched_engine, max_batch_size=MAX_BATCH, flush_deadline_ms=50.0, cache=cache
    )
    results, batched_seconds = _timed(lambda: replay(batcher, events))
    assert len(results) == NUM_QUERIES

    single_qps = NUM_QUERIES / single_seconds
    batched_qps = NUM_QUERIES / batched_seconds
    report = {
        "queries": NUM_QUERIES,
        "single": {
            "qps": single_qps,
            "latency_ms": {
                "p50": single_metrics.percentile(50),
                "p95": single_metrics.percentile(95),
                "p99": single_metrics.percentile(99),
            },
        },
        "batched": {
            "qps": batched_qps,
            "max_batch_size": MAX_BATCH,
            "mean_batch_size": batcher.metrics.mean_batch_size,
            "latency_ms": {
                "p50": batcher.metrics.percentile(50),
                "p95": batcher.metrics.percentile(95),
                "p99": batcher.metrics.percentile(99),
            },
            "cache_hit_rate": cache.gate_hit_rate,
            "batch_size_histogram": {
                str(size): count
                for size, count in batcher.metrics.batch_size_histogram().items()
            },
        },
        "speedup": batched_qps / single_qps,
    }
    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2))

    print_table(
        ["Path", "QPS", "p50 ms", "p95 ms", "p99 ms", "gate-cache hits"],
        [
            ["single-query", f"{single_qps:.0f}",
             f"{single_metrics.percentile(50):.2f}",
             f"{single_metrics.percentile(95):.2f}",
             f"{single_metrics.percentile(99):.2f}", "-"],
            ["micro-batched + cache", f"{batched_qps:.0f}",
             f"{batcher.metrics.percentile(50):.2f}",
             f"{batcher.metrics.percentile(95):.2f}",
             f"{batcher.metrics.percentile(99):.2f}",
             f"{cache.gate_hit_rate:.1%}"],
        ],
        title=f"Serving throughput — {NUM_QUERIES} Zipf queries (artifact: {ARTIFACT.name})",
    )
    print(f"Speedup: {report['speedup']:.2f}x")

    # Acceptance: batching + session-gate caching must beat the per-query
    # loop on identical traffic, and skewed traffic must actually hit the
    # gate cache.
    assert batched_qps > single_qps
    assert cache.gate_hit_rate > 0.0
    assert batcher.metrics.max_batch_size <= MAX_BATCH


def test_compiled_inference_speedup(search_data, trained_models):
    """Compiled plan vs eager ``Tensor`` forward, micro to macro.

    Three measurements over the same trained AW-MoE:

    * **single-query scoring** — one session's candidate batch, the unit of
      work ``SearchEngine.search`` scores (acceptance: ≥ 2x compiled);
    * **flush-sized batch scoring** — ``MAX_BATCH`` concatenated sessions,
      the micro-batcher's forward (no uniform-session shortcut applies);
    * **end-to-end fleet QPS** — identical Zipf traffic through two
      2-shard clusters, compiled vs ``compile=False`` (includes retrieval
      and feature assembly, so the gain is diluted but must stay > 1).
    """
    world, _, _ = search_data
    model, _ = trained_models["aw_moe"]
    model.eval()
    compiled = compile_model(model)
    loops = 5 if SMOKE else 40
    repeats = 2 if SMOKE else 5

    # -- single-query scoring -------------------------------------------
    assembly_engine = SearchEngine(world, model, np.random.default_rng(11), compile=False)
    candidates = assembly_engine.retrieve(3)
    query_batch = assembly_engine.build_batch(7, 3, candidates)
    compiled.predict_proba(query_batch)  # warm the arena
    eager_single = _best_seconds(lambda: model.predict_proba(query_batch), loops, repeats)
    compiled_single = _best_seconds(lambda: compiled.predict_proba(query_batch), loops, repeats)
    single_speedup = eager_single / compiled_single

    # -- flush-sized mixed batch ----------------------------------------
    rng = np.random.default_rng(13)
    session_batches = []
    for user in range(MAX_BATCH):
        category = int(rng.integers(0, world.config.num_categories))
        session_batches.append(
            assembly_engine.build_batch(user, category, assembly_engine.retrieve(category))
        )
    flush_batch = {
        key: np.concatenate([b[key] for b in session_batches], axis=0)
        for key in session_batches[0]
    }
    compiled.predict_proba(flush_batch)
    eager_flush = _best_seconds(lambda: model.predict_proba(flush_batch), loops, repeats)
    compiled_flush = _best_seconds(lambda: compiled.predict_proba(flush_batch), loops, repeats)
    flush_speedup = eager_flush / compiled_flush

    # -- end-to-end fleet -----------------------------------------------
    events = ZipfLoadGenerator(
        np.random.default_rng(17), world=world, zipf_exponent=1.2
    ).generate(NUM_QUERIES)
    fleet = {"eager": {"seconds": float("inf")}, "compiled": {"seconds": float("inf")}}
    # Interleaved best-of-2 per configuration: e2e replays are short enough
    # that a single background hiccup can swamp the margin on shared CI
    # machines; keeping the best run of each makes the ratio a property of
    # the code, not the neighbourhood.
    for _ in range(1 if SMOKE else 2):
        for label, compile_flag in (("eager", False), ("compiled", True)):
            cluster = ShardedCluster(
                world,
                model,
                num_shards=2,
                seed=5,
                max_batch_size=8,
                flush_deadline_ms=50.0,
                cache_capacity=2048,
                compile=compile_flag,
            )
            results, seconds = _timed(lambda: replay(cluster, events))
            assert len(results) == NUM_QUERIES
            if seconds < fleet[label]["seconds"]:
                fleet[label] = {"qps": NUM_QUERIES / seconds, "seconds": seconds}
    fleet_improvement = fleet["compiled"]["qps"] / fleet["eager"]["qps"]

    # -- per-kernel profile ---------------------------------------------
    # Profiled *after* the timing measurements so the per-step clocks never
    # contaminate the speedup ratios.  Shares (fraction of plan time per
    # fused kernel) are gated against the reference: a kernel suddenly
    # eating a much larger slice of the plan is a code regression even when
    # total wall time looks fine on a faster machine.
    profiler = PlanProfiler()
    compiled.attach_profiler(profiler)
    for _ in range(loops):
        compiled.predict_proba(flush_batch)
    profile_table = compiled.profile_report()
    compiled.attach_profiler(None)
    profile_shares = {plan: profiler.shares(plan) for plan in profiler.plans()}

    report = {
        "smoke": SMOKE,
        "queries": NUM_QUERIES,
        "single_query": {
            "rows": int(query_batch["label"].shape[0]),
            "eager_us": eager_single * 1e6,
            "compiled_us": compiled_single * 1e6,
            "speedup": single_speedup,
        },
        "flush_batch": {
            "rows": int(flush_batch["label"].shape[0]),
            "eager_us": eager_flush * 1e6,
            "compiled_us": compiled_flush * 1e6,
            "speedup": flush_speedup,
        },
        "fleet": {
            "num_shards": 2,
            "eager_qps": fleet["eager"]["qps"],
            "compiled_qps": fleet["compiled"]["qps"],
            "qps_improvement": fleet_improvement,
        },
        "plan": compiled.stats(),
        "profile": {"loops": loops, "rows": int(flush_batch["label"].shape[0]),
                    "shares": profile_shares},
    }
    COMPILED_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    COMPILED_ARTIFACT.write_text(json.dumps(report, indent=2))
    # The single-query speedup is a high-margin, machine-portable ratio —
    # it is hard-gated even in smoke mode (>30% down fails the job, see
    # _helpers.compare_to_artifact).  The flush and e2e-fleet ratios ride
    # closer to 1x and breathe with runner noise, so they stay warn-only
    # (fail_tolerance=1.0) and are skipped entirely in smoke mode.
    regressions = compare_to_artifact(
        report, COMPILED_REFERENCE, [("single_query", "speedup")]
    ) + ([] if SMOKE else compare_to_artifact(
        report,
        COMPILED_REFERENCE,
        [("flush_batch", "speedup"), ("fleet", "qps_improvement")],
        fail_tolerance=1.0,
    ))
    # Per-kernel share gate: +10 share points warns, +25 fails.  Shares are
    # ratios within one run, so the gate holds in smoke mode too.
    regressions += compare_profile_shares(report, COMPILED_REFERENCE)

    print_table(
        ["Path", "eager", "compiled", "speedup"],
        [
            ["single-query scoring", f"{eager_single * 1e6:.0f} us",
             f"{compiled_single * 1e6:.0f} us", f"{single_speedup:.2f}x"],
            ["flush-batch scoring", f"{eager_flush * 1e6:.0f} us",
             f"{compiled_flush * 1e6:.0f} us", f"{flush_speedup:.2f}x"],
            ["fleet end-to-end", f"{fleet['eager']['qps']:.0f} qps",
             f"{fleet['compiled']['qps']:.0f} qps", f"{fleet_improvement:.2f}x"],
        ],
        title=f"Compiled inference — artifact: {COMPILED_ARTIFACT.name}"
        + (" [smoke]" if SMOKE else ""),
    )
    print(profile_table)
    if regressions:
        print("regression warnings:", *regressions, sep="\n  ")

    # Acceptance: the compiled plan must at least double raw single-query
    # scoring throughput and win end to end.  The hard gates apply on quiet
    # machines (tier-1 on the dev box); smoke mode and shared CI runners
    # check direction only — regressions there surface as
    # BenchmarkRegressionWarning against the checked-in reference instead
    # of a red build.
    if STRICT_TIMING:
        assert single_speedup >= 2.0
        assert flush_speedup > 1.0
        assert fleet_improvement > 1.0
    else:
        # Only the high-margin ratio is asserted off-box; the e2e fleet
        # ratio is one short wall-clock replay, so on shared runners a bad
        # number warns instead of failing the build.
        assert single_speedup > 1.0
        if fleet_improvement < 0.8:
            warnings.warn(
                f"compiled fleet QPS ratio {fleet_improvement:.2f} < 0.8 "
                "(timing noise or a real regression — see the artifact)",
                stacklevel=2,
            )


def test_tracing_overhead(search_data, trained_models):
    """Disabled-instrumentation guard: tracing must be free when off.

    Every serving layer now calls into the tracer unconditionally; the
    null-object design (``NULL_TRACER``/``NULL_TRACE``) is what keeps that
    affordable.  This benchmark replays identical Zipf traffic through the
    micro-batched path three ways — no tracer, a tracer that samples
    nothing (pays only the per-request sampling decision), and full
    sampling (every span recorded) — and guards the ISSUE acceptance bound:
    the disabled path must regress batched throughput by **less than 5%**.

    The full-sampling column is informational (it is *supposed* to cost
    something); only the disabled ratios are gated, and only on quiet
    machines — smoke/CI runs sanity-check direction and record the artifact.

    A second pair extends the guard to the full monitor stack (ISSUE PR 7):
    a cascade-backed engine with a 0%-rate shadow-recall monitor and a
    0%-sampling tracer attached must also stay within 5% of the same
    engine with no monitors at all.
    """
    world, _, _ = search_data
    model, _ = trained_models["aw_moe"]
    events = ZipfLoadGenerator(
        np.random.default_rng(17), world=world, zipf_exponent=1.2
    ).generate(NUM_QUERIES)
    repeats = 2 if SMOKE else 3

    def run_once(tracer):
        engine = SearchEngine(world, model, np.random.default_rng(7))
        batcher = MicroBatcher(
            engine,
            max_batch_size=MAX_BATCH,
            flush_deadline_ms=50.0,
            cache=SessionCache(2048),
            tracer=tracer,
        )
        results, seconds = _timed(lambda: replay(batcher, events))
        assert len(results) == NUM_QUERIES
        return seconds

    # Round-robin the configurations inside each repeat: when the suite has
    # been running for minutes, machine speed drifts monotonically, and
    # measuring each configuration as one contiguous block lands all of
    # that drift on one side of the ratio.  Interleaving cancels it;
    # best-of-N still discards one-off hiccups.
    configs = {
        "baseline": lambda: None,
        "disabled": lambda: Tracer(sample_rate=0.0),
        "sampled": lambda: Tracer(sample_rate=1.0),
    }
    samples = {name: [] for name in configs}
    for _ in range(repeats):
        for name, make_tracer in configs.items():
            samples[name].append(run_once(make_tracer()))
    baseline, disabled, sampled = (
        min(samples[name]) for name in ("baseline", "disabled", "sampled")
    )
    disabled_overhead = disabled / baseline - 1.0
    sampled_overhead = sampled / baseline - 1.0
    # Measured quietness beats guessing from env vars: if the identical
    # baseline workload doesn't reproduce within 5% run-to-run, a <5%
    # overhead gate compares noise with noise — warn instead of assert.
    baseline_jitter = max(samples["baseline"]) / min(samples["baseline"]) - 1.0
    quiet = baseline_jitter < 0.05

    # -- full monitor stack attached but disabled -----------------------
    # Shadow recall only exercises the cascade retrieval path, so this
    # pair runs a cascade-backed engine: plain versus the same engine with
    # a 0%-sampling shadow-recall monitor and a 0%-sampling tracer.  The
    # monitored path pays only the per-request sampling decisions.
    cascade = CascadeConfig(
        retrieve_n=24, prune=12, nprobe=2,
        calibration_queries=32, calibration_items=64,
    )

    def run_cascade_once(shadow, tracer):
        engine = SearchEngine(
            world,
            model,
            np.random.default_rng(7),
            cascade=cascade,
            shadow_recall=shadow,
        )
        batcher = MicroBatcher(
            engine,
            max_batch_size=MAX_BATCH,
            flush_deadline_ms=50.0,
            cache=SessionCache(2048),
            tracer=tracer,
        )
        results, seconds = _timed(lambda: replay(batcher, events))
        assert len(results) == NUM_QUERIES
        return seconds

    cascade_baseline = monitored = float("inf")
    for _ in range(repeats):  # interleaved, same rationale as above
        cascade_baseline = min(cascade_baseline, run_cascade_once(None, None))
        monitored = min(
            monitored,
            run_cascade_once(ShadowRecallMonitor(rate=0.0), Tracer(sample_rate=0.0)),
        )
    monitors_overhead = monitored / cascade_baseline - 1.0

    report = {
        "smoke": SMOKE,
        "queries": NUM_QUERIES,
        "repeats": repeats,
        "baseline_qps": NUM_QUERIES / baseline,
        "disabled_tracer_qps": NUM_QUERIES / disabled,
        "sampled_tracer_qps": NUM_QUERIES / sampled,
        "disabled_overhead": disabled_overhead,
        "sampled_overhead": sampled_overhead,
        "baseline_jitter": baseline_jitter,
        "cascade_baseline_qps": NUM_QUERIES / cascade_baseline,
        "monitors_disabled_qps": NUM_QUERIES / monitored,
        "monitors_disabled_overhead": monitors_overhead,
    }
    OBSERVABILITY_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    OBSERVABILITY_ARTIFACT.write_text(json.dumps(report, indent=2))

    print_table(
        ["Path", "QPS", "overhead"],
        [
            ["no tracer", f"{NUM_QUERIES / baseline:.0f}", "-"],
            ["tracer, sampling off", f"{NUM_QUERIES / disabled:.0f}",
             f"{disabled_overhead:+.1%}"],
            ["tracer, 100% sampled", f"{NUM_QUERIES / sampled:.0f}",
             f"{sampled_overhead:+.1%}"],
            ["cascade, no monitors", f"{NUM_QUERIES / cascade_baseline:.0f}", "-"],
            ["cascade, monitors off", f"{NUM_QUERIES / monitored:.0f}",
             f"{monitors_overhead:+.1%}"],
        ],
        title=f"Tracing overhead — {NUM_QUERIES} Zipf queries "
        f"(artifact: {OBSERVABILITY_ARTIFACT.name})",
    )

    if STRICT_TIMING and quiet:
        assert disabled_overhead < 0.05
        assert monitors_overhead < 0.05
    else:
        for label, overhead in (
            ("disabled-tracer", disabled_overhead),
            ("monitors-disabled", monitors_overhead),
        ):
            if overhead >= 0.05:
                warnings.warn(
                    f"{label} overhead {overhead:.1%} >= 5% "
                    f"(baseline jitter {baseline_jitter:.1%}; noisy runner "
                    "or a real regression — see the artifact)",
                    stacklevel=2,
                )
    # Any environment: the disabled paths must not be catastrophically slower.
    assert disabled_overhead < 0.5
    assert monitors_overhead < 0.5


def test_traced_fleet_artifacts(search_data, trained_models):
    """Fully sampled traced run: the observability artifacts CI uploads.

    Replays Zipf traffic through a 2-shard cascade-backed fleet with a
    100%-sampling tracer, a fleet SLO, and streaming metrics, then exports:

    * ``trace.jsonl`` — one line per request, spans covering queue-wait,
      gate (cache hit/miss), retrieval sub-stages (ivf-probe), and the
      per-kernel rank steps (the ISSUE's acceptance trace);
    * ``metrics_snapshot.json`` — fleet summary + Prometheus-style registry
      dump + SLO status;
    * ``metrics_snapshot.prom`` — the Prometheus text exposition.
    """
    world, _, _ = search_data
    model, _ = trained_models["aw_moe"]
    num_queries = min(NUM_QUERIES, 120)
    events = ZipfLoadGenerator(
        np.random.default_rng(19), world=world, zipf_exponent=1.2
    ).generate(num_queries)

    TRACE_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    slo = SloTracker(latency_slo_ms=250.0, availability_target=0.99, window_seconds=600.0)
    with JsonlTraceExporter(str(TRACE_ARTIFACT)) as exporter:
        tracer = Tracer(sample_rate=1.0, exporter=exporter)
        cluster = ShardedCluster(
            world,
            model,
            num_shards=2,
            seed=5,
            max_batch_size=8,
            flush_deadline_ms=50.0,
            cache_capacity=2048,
            cascade=CascadeConfig(
                retrieve_n=24, prune=12, nprobe=2,
                calibration_queries=32, calibration_items=64,
            ),
            slo=slo,
            tracer=tracer,
        )
        results = replay(cluster, events)
        assert len(results) == num_queries
        traces_written = exporter.traces_written

    merged = cluster.merged_metrics()
    snapshot = {
        "queries": num_queries,
        "summary": merged.summary(),
        "registry": merged.to_registry().to_json(),
        "tracer": tracer.stats(),
    }
    METRICS_SNAPSHOT.write_text(json.dumps(snapshot, indent=2))
    PROMETHEUS_SNAPSHOT.write_text(merged.prometheus_text())

    print(cluster.fleet_report())
    print(f"\ntrace artifact: {TRACE_ARTIFACT.name} ({traces_written} traces)")

    # Acceptance: the exported trace covers every stage of the ISSUE's span
    # tree on at least one request.
    assert traces_written == num_queries
    span_names = set()
    with TRACE_ARTIFACT.open() as lines:
        for line in lines:
            span_names.update(span["name"] for span in json.loads(line)["spans"])
    for required in (
        "submit", "queue-wait", "gate", "retrieve", "session-vector",
        "ivf-probe", "flush", "rank", "experts", "mix",
    ):
        assert required in span_names, f"span {required!r} missing from trace"
    # The metrics snapshot is streaming (bounded): no raw latency list, yet
    # percentiles and the SLO verdict are present.
    assert merged.latencies_ms is None
    assert snapshot["summary"]["latency_ms"]["p99"] > 0.0
    assert snapshot["summary"]["slo"]["window_requests"] == num_queries
