"""Serving-throughput benchmark: single-query vs micro-batched + cached.

Replays identical Zipf-distributed traffic (the repeated-user regime of
production search, §III-F) through two serving stacks built over the same
trained AW-MoE and the same retrieval RNG:

* **single** — the classic loop: one ``SearchEngine.search`` call per query,
  one full model forward (gate network included) per query;
* **batched** — the :class:`~repro.serving.batcher.MicroBatcher` with a
  session cache: queries coalesce into one forward per tick and the gate is
  evaluated at most once per (user, query-category) session.

Reports QPS and latency percentiles for both and writes the comparison to
``benchmarks/artifacts/serving_throughput.json``.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.serving import (
    MetricsSink,
    MicroBatcher,
    SearchEngine,
    SessionCache,
    ZipfLoadGenerator,
    replay,
)
from repro.utils import print_table

NUM_QUERIES = 400
MAX_BATCH = 16
ARTIFACT = Path(__file__).parent / "artifacts" / "serving_throughput.json"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_serving_throughput(search_data, trained_models):
    world, _, _ = search_data
    model, _ = trained_models["aw_moe"]
    events = ZipfLoadGenerator(
        np.random.default_rng(17), world=world, zipf_exponent=1.2
    ).generate(NUM_QUERIES)

    # -- single-query baseline ------------------------------------------
    single_engine = SearchEngine(world, model, np.random.default_rng(7))
    single_metrics = MetricsSink()

    def run_single():
        for event in events:
            result = single_engine.search(event.user, event.query_category)
            single_metrics.record_query(result.latency_ms)

    _, single_seconds = _timed(run_single)

    # -- micro-batched + session cache ----------------------------------
    batched_engine = SearchEngine(world, model, np.random.default_rng(7))
    cache = SessionCache(2048)
    batcher = MicroBatcher(
        batched_engine, max_batch_size=MAX_BATCH, flush_deadline_ms=50.0, cache=cache
    )
    results, batched_seconds = _timed(lambda: replay(batcher, events))
    assert len(results) == NUM_QUERIES

    single_qps = NUM_QUERIES / single_seconds
    batched_qps = NUM_QUERIES / batched_seconds
    report = {
        "queries": NUM_QUERIES,
        "single": {
            "qps": single_qps,
            "latency_ms": {
                "p50": single_metrics.percentile(50),
                "p95": single_metrics.percentile(95),
                "p99": single_metrics.percentile(99),
            },
        },
        "batched": {
            "qps": batched_qps,
            "max_batch_size": MAX_BATCH,
            "mean_batch_size": batcher.metrics.mean_batch_size,
            "latency_ms": {
                "p50": batcher.metrics.percentile(50),
                "p95": batcher.metrics.percentile(95),
                "p99": batcher.metrics.percentile(99),
            },
            "cache_hit_rate": cache.gate_hit_rate,
            "batch_size_histogram": {
                str(size): count
                for size, count in batcher.metrics.batch_size_histogram().items()
            },
        },
        "speedup": batched_qps / single_qps,
    }
    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2))

    print_table(
        ["Path", "QPS", "p50 ms", "p95 ms", "p99 ms", "gate-cache hits"],
        [
            ["single-query", f"{single_qps:.0f}",
             f"{single_metrics.percentile(50):.2f}",
             f"{single_metrics.percentile(95):.2f}",
             f"{single_metrics.percentile(99):.2f}", "-"],
            ["micro-batched + cache", f"{batched_qps:.0f}",
             f"{batcher.metrics.percentile(50):.2f}",
             f"{batcher.metrics.percentile(95):.2f}",
             f"{batcher.metrics.percentile(99):.2f}",
             f"{cache.gate_hit_rate:.1%}"],
        ],
        title=f"Serving throughput — {NUM_QUERIES} Zipf queries (artifact: {ARTIFACT.name})",
    )
    print(f"Speedup: {report['speedup']:.2f}x")

    # Acceptance: batching + session-gate caching must beat the per-query
    # loop on identical traffic, and skewed traffic must actually hit the
    # gate cache.
    assert batched_qps > single_qps
    assert cache.gate_hit_rate > 0.0
    assert max(batcher.metrics.batch_sizes) <= MAX_BATCH
