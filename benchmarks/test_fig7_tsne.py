"""Fig. 7 — t-SNE of the gate network's user representations.

The paper shows that gate outputs cluster by user group: new users separate
cleanly from old users, and old users split by whether they purchased the
target item before.  We embed the trained AW-MoE gate outputs with our exact
t-SNE and check the separation quantitatively (centroid purity and
silhouette), since a benchmark cannot eyeball a scatter plot.
"""

import numpy as np

from repro.eval import (
    TSNEParams,
    fig7_user_groups,
    nearest_centroid_purity,
    silhouette_score,
    tsne,
)
from repro.utils import print_table

GROUP_NAMES = {0: "New user", 1: "Old user w/o target order", 2: "Old user w/ target order"}


def test_fig7_gate_representation_clusters(benchmark, trained_models, search_splits):
    model, _ = trained_models["aw_moe_cl"]
    test = search_splits["full"]

    def embed():
        rows = np.arange(min(600, len(test)))
        batch = test.batch_at(rows)
        gates = model.gate_outputs(batch)
        groups = fig7_user_groups(
            test.behavior_lengths()[rows],
            batch["other_features"][:, test.meta.feature_index("item_click_cnt")],
        )
        coords = tsne(gates, TSNEParams(num_iters=300), rng=np.random.default_rng(1))
        return gates, coords, groups

    gates, coords, groups = benchmark.pedantic(embed, rounds=1, iterations=1)

    present = [g for g in np.unique(groups) if (groups == g).sum() >= 5]
    keep = np.isin(groups, present)
    purity = nearest_centroid_purity(coords[keep], groups[keep])
    gate_silhouette_new_vs_old = silhouette_score(
        gates[keep], (groups[keep] == 0).astype(int)
    ) if 0 in present else float("nan")

    counts = [[GROUP_NAMES[g], int((groups == g).sum())] for g in np.unique(groups)]
    print_table(["User group", "count"], counts, title="Fig. 7 — user groups in sample")
    print(f"Fig. 7 — t-SNE centroid purity over groups: {purity:.3f}")
    print(f"Fig. 7 — gate-space silhouette (new vs old users): {gate_silhouette_new_vs_old:.3f}")

    # New users must be separated from old users in gate space (the paper's
    # clearest visual claim): their centroid distance should exceed the
    # typical within-old spread.
    assert 0 in present, "sample must contain new users"
    new_centroid = gates[groups == 0].mean(axis=0)
    old_centroid = gates[groups != 0].mean(axis=0)
    within_spread = np.linalg.norm(gates[groups != 0] - old_centroid, axis=1).mean()
    between = np.linalg.norm(new_centroid - old_centroid)
    assert between > 0.1 * within_spread, "new users must be displaced from old users"
    assert purity > 0.4, "t-SNE clusters must be better than random assignment"
