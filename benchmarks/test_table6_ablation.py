"""Table VI — ablation of the gate network's two modules (GU and AU).

Paper values (full test AUC): Base 0.8438 < Base+GU 0.8451 < Base+AU 0.8455
< Base+GU+AU 0.8459 — each module contributes, together they are best.  At
CPU scale the individual deltas (~0.1-0.2 points in the paper) are near the
seed noise floor, so the benchmark asserts the robust part of the shape: the
full AW-MoE gate is not worse than the Base variant, and all variants train
to useful accuracy.
"""


from repro.core import AWMoE, ModelConfig
from repro.core.trainer import train_model
from repro.eval import evaluate_ranking
from repro.utils import SeedBank, format_float, print_table

from conftest import bench_train_config

PAPER_AUC = {
    "Base (sum pooling)": 0.8438,
    "Base+GU": 0.8451,
    "Base+AU": 0.8455,
    "Base+GU+AU (AW-MoE)": 0.8459,
}

VARIANTS = {
    "Base (sum pooling)": (False, False),
    "Base+GU": (True, False),
    "Base+AU": (False, True),
    "Base+GU+AU (AW-MoE)": (True, True),
}


def test_table6_gate_module_ablation(benchmark, search_data):
    _, train, test = search_data
    bank = SeedBank(66)

    def run_all():
        results = {}
        for label, (use_gu, use_au) in VARIANTS.items():
            config = ModelConfig.small().with_gate_ablation(use_gu, use_au)
            model = AWMoE(config, train.meta, bank.child(label))
            train_model(model, train, bench_train_config(), seed=13)
            results[label] = evaluate_ranking(model, test)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            label,
            format_float(results[label]["auc"]),
            format_float(results[label]["ndcg"]),
            format_float(PAPER_AUC[label]),
        ]
        for label in VARIANTS
    ]
    print_table(
        ["Gate variant", "AUC", "NDCG", "paper AUC"],
        rows,
        title="Table VI — gate network ablation (GU: gate unit, AU: activation unit)",
    )

    aucs = {label: results[label]["auc"] for label in VARIANTS}
    full_variant = aucs["Base+GU+AU (AW-MoE)"]
    # The paper's per-module deltas are 0.1-0.2 AUC points — below our seed
    # noise (±1 point); the assertion bounds the ablation to that noise band
    # rather than claiming to resolve the ordering.
    assert full_variant >= aucs["Base (sum pooling)"] - 0.025, (
        "the attention-weighted gate must stay within noise of sum pooling"
    )
    assert max(aucs.values()) - min(aucs.values()) < 0.05, (
        "gate-module choice must not change accuracy beyond the noise band"
    )
    for label, value in aucs.items():
        assert value > 0.55, f"{label} must train to useful accuracy"
