"""Fig. 8 — contrastive-learning hyper-parameter sweeps (p, l, λ).

The paper tunes the mask probability p, the negative count l and the loss
weight λ on the long-tail AUC@10 and finds an interior optimum for each
(p = 0.1, l = 3, λ = 0.05): performance degrades at both extremes.  The
benchmark sweeps each parameter (others fixed at the paper's optimum) on the
long-tail split and asserts the robust part of the shape: the extreme-masking
end of the p-sweep must not win, and every setting stays in a sane band.
"""


from repro.core import ModelConfig, build_model, train_model
from repro.eval import predict_scores
from repro.eval.auc import session_auc_at_k
from repro.utils import SeedBank, format_float, print_table

from conftest import bench_train_config

P_VALUES = [0.01, 0.1, 0.4, 0.8]
L_VALUES = [1, 3, 10]
LAMBDA_VALUES = [0.01, 0.05, 0.5]


def _train_and_score(train, split, bank, tag, **cl_overrides):
    config = bench_train_config().with_contrastive(**cl_overrides)
    model = build_model("aw_moe", ModelConfig.small(), train.meta, bank.child(tag))
    train_model(model, train, config, seed=21)
    scores = predict_scores(model, split)
    return session_auc_at_k(scores, split.label, split.session_id, k=10)


def test_fig8_contrastive_hyperparameters(benchmark, search_data, search_splits):
    _, train, _ = search_data
    split = search_splits["long_tail_1"]
    bank = SeedBank(88)

    def run_sweeps():
        sweeps = {"p": {}, "l": {}, "lambda": {}}
        for p in P_VALUES:
            sweeps["p"][p] = _train_and_score(train, split, bank, f"p{p}", mask_prob=p)
        for num_negatives in L_VALUES:
            sweeps["l"][num_negatives] = _train_and_score(
                train, split, bank, f"l{num_negatives}", num_negatives=num_negatives
            )
        for lam in LAMBDA_VALUES:
            sweeps["lambda"][lam] = _train_and_score(
                train, split, bank, f"lam{lam}", cl_weight=lam
            )
        return sweeps

    sweeps = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    for parameter, values in sweeps.items():
        rows = [[str(setting), format_float(auc)] for setting, auc in values.items()]
        print_table(
            [parameter, "long-tail AUC@10"],
            rows,
            title=f"Fig. 8 — sweep of {parameter} (others at paper optimum)",
        )

    # Shape checks (paper: optimum at p=0.1, extremes deteriorate).
    p_sweep = sweeps["p"]
    assert max(p_sweep, key=p_sweep.get) != 0.8, (
        "masking nearly the whole sequence must not be the best setting"
    )
    for parameter, values in sweeps.items():
        spread = max(values.values()) - min(values.values())
        assert spread < 0.1, f"{parameter} sweep out of sane band (spread {spread:.3f})"
        for auc in values.values():
            assert auc > 0.55
