"""Setuptools shim.

This environment has no ``wheel`` package, so PEP 517 editable installs fail
with ``invalid command 'bdist_wheel'``.  Keeping a ``setup.py`` allows
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) to work offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
